"""Worker auto-restart: a crashed serving worker costs latency, not
availability (the ROADMAP item PR 4 left open).

Isolated from the other serving suites because these tests deliberately
SIGKILL worker processes — they get their own server.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.data import generate_irregular_grid, sample_gaussian_field
from repro.exceptions import ConfigurationError, ServerError
from repro.kernels import MaternCovariance
from repro.mle import PredictionEngine
from repro.serving import ModelBundle, ServingClient, ServingServer

N, NB = 100, 36


def _bundle(theta=(1.0, 0.1, 0.5)):
    locs = generate_irregular_grid(N, seed=0)
    model = MaternCovariance(*theta)
    z = sample_gaussian_field(locs, model, seed=1)
    bundle = ModelBundle(
        model=model, locations=locs, z=z, variant="full-block", tile_size=NB
    )
    bundle.factor = bundle.build_engine().factor()
    return bundle


@pytest.fixture()
def server(tmp_path):
    path = _bundle().save(tmp_path / "m.bundle")
    with ServingServer(
        {"m": str(path)},
        num_workers=2,
        max_worker_restarts=2,
        enable_fitting=False,
        service_options={"batch_window": 0.0},
    ) as srv:
        yield srv


@pytest.fixture()
def targets():
    return np.ascontiguousarray(np.random.default_rng(5).random((6, 2)))


def _kill_worker(server, model_id):
    handle = server._workers[server.worker_for(model_id)]
    os.kill(handle.process.pid, signal.SIGKILL)
    handle.process.join(10.0)
    deadline = time.time() + 10.0
    while handle.alive and time.time() < deadline:
        time.sleep(0.01)  # the reader thread is flipping the handle dead
    assert not handle.alive
    return handle


def test_request_after_worker_death_respawns_and_succeeds(server, targets):
    with ServingClient(server.url) as cli:
        reference = cli.predict("m", targets)
        _kill_worker(server, "m")
        assert cli.health()["status"] == "degraded"
        # The next request transparently respawns the worker and retries.
        got = cli.predict("m", targets)
        np.testing.assert_array_equal(got, reference)
        health = cli.health()
        assert health["status"] == "ok"
        assert health["alive"] == [True, True]
        assert health["worker_restarts"] == 1


def test_in_flight_requests_fail_over_to_the_respawned_worker(server, targets):
    """Kill the worker under continuous traffic: every request issued
    across the crash must be answered (retried on the fresh worker),
    never errored."""
    import threading

    with ServingClient(server.url) as cli:
        reference = cli.predict("m", targets)

    answers, failures = [], []
    stop = threading.Event()

    def hammer():
        with ServingClient(server.url) as cli:
            while not stop.is_set():
                try:
                    answers.append(cli.predict("m", targets))
                except Exception as exc:  # noqa: BLE001 - the assertion target
                    failures.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for t in threads:
        t.start()
    try:
        deadline = time.time() + 30.0
        while not answers and time.time() < deadline:
            time.sleep(0.005)  # traffic is flowing before the kill
        _kill_worker(server, "m")
        deadline = time.time() + 30.0
        while server.n_worker_restarts < 1 and time.time() < deadline:
            time.sleep(0.01)  # some request observed the death and retried
        time.sleep(0.1)  # a little post-respawn traffic
    finally:
        stop.set()
        for t in threads:
            t.join()

    assert not failures, f"requests failed across the crash: {failures[:3]}"
    assert server.n_worker_restarts >= 1
    for got in answers:
        np.testing.assert_array_equal(got, reference)


def test_models_registered_after_start_survive_a_respawn(server, targets, tmp_path):
    late_path = _bundle(theta=(2.0, 0.15, 0.8)).save(tmp_path / "late.bundle")
    with ServingClient(server.url) as cli:
        cli.register("late", str(late_path))
        reference = PredictionEngine.from_bundle(late_path).predict(targets)
        np.testing.assert_array_equal(cli.predict("late", targets), reference)
        _kill_worker(server, "late")
        # The respawned worker re-registers 'late' from the router's map.
        np.testing.assert_array_equal(cli.predict("late", targets), reference)


def test_runtime_policies_survive_a_respawn(server, targets):
    """Per-model batching policies set after startup are re-installed on
    the respawned worker (regression: they used to silently revert)."""
    with ServingClient(server.url) as cli:
        policy = cli.set_policy("m", batch_window=0.015, max_batch=3)
        assert policy == {"batch_window": 0.015, "max_batch": 3, "worker": policy["worker"]}
        _kill_worker(server, "m")
        cli.predict("m", targets)  # triggers the respawn
        # Asking the worker for the effective policy (via a no-op
        # policy update) must return the pre-crash values.
        restored = cli.set_policy("m")
        assert restored["batch_window"] == 0.015
        assert restored["max_batch"] == 3


def test_restart_budget_exhausts_into_server_error(server, targets):
    with ServingClient(server.url) as cli:
        cli.predict("m", targets)
        for _ in range(2):  # burn the budget (max_worker_restarts=2)
            _kill_worker(server, "m")
            cli.predict("m", targets)
        _kill_worker(server, "m")
        with pytest.raises(ServerError, match="exhausted"):
            cli.predict("m", targets)
        assert cli.health()["status"] == "degraded"


def test_max_worker_restarts_validated(tmp_path):
    path = _bundle().save(tmp_path / "m.bundle")
    with pytest.raises(ConfigurationError):
        ServingServer({"m": str(path)}, max_worker_restarts=-1)
