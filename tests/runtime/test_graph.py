"""Tests for dependency inference (sequential-task-flow hazards)."""

from __future__ import annotations

import pytest

from repro.runtime.graph import DependencyTracker, build_networkx_dag, critical_path_length
from repro.runtime.handle import DataHandle
from repro.runtime.task import AccessMode, Task

R, W, RW = AccessMode.READ, AccessMode.WRITE, AccessMode.READWRITE


def noop(*args):
    return None


def make_task(accesses, name="t"):
    return Task(noop, accesses, name=name)


class TestHazards:
    def test_raw_reader_depends_on_writer(self):
        tr = DependencyTracker()
        h = DataHandle(0)
        writer = make_task([(h, W)])
        reader = make_task([(h, R)])
        tr.register(writer)
        deps = tr.register(reader)
        assert deps == {writer}

    def test_concurrent_readers_no_mutual_deps(self):
        tr = DependencyTracker()
        h = DataHandle(0)
        w = make_task([(h, W)])
        r1 = make_task([(h, R)])
        r2 = make_task([(h, R)])
        tr.register(w)
        assert tr.register(r1) == {w}
        assert tr.register(r2) == {w}  # r2 does NOT depend on r1

    def test_war_writer_waits_for_readers(self):
        tr = DependencyTracker()
        h = DataHandle(0)
        w1 = make_task([(h, W)])
        r1 = make_task([(h, R)])
        r2 = make_task([(h, R)])
        w2 = make_task([(h, W)])
        for t in (w1, r1, r2):
            tr.register(t)
        deps = tr.register(w2)
        assert deps == {w1, r1, r2}

    def test_waw_chain(self):
        tr = DependencyTracker()
        h = DataHandle(0)
        w1 = make_task([(h, RW)])
        w2 = make_task([(h, RW)])
        w3 = make_task([(h, RW)])
        tr.register(w1)
        assert tr.register(w2) == {w1}
        assert tr.register(w3) == {w2}

    def test_multi_handle_union(self):
        tr = DependencyTracker()
        ha, hb = DataHandle(0), DataHandle(1)
        wa = make_task([(ha, W)])
        wb = make_task([(hb, W)])
        consumer = make_task([(ha, R), (hb, RW)])
        tr.register(wa)
        tr.register(wb)
        assert tr.register(consumer) == {wa, wb}

    def test_reset_clears_bookkeeping(self):
        tr = DependencyTracker()
        h = DataHandle(0)
        w = make_task([(h, W)])
        tr.register(w)
        tr.reset()
        assert tr.tasks == []
        assert h.last_writer is None
        r = make_task([(h, R)])
        assert tr.register(r) == set()


class TestDagExport:
    def _chain(self, k=4):
        tr = DependencyTracker()
        h = DataHandle(0)
        tasks = []
        for i in range(k):
            t = make_task([(h, RW)], name=f"t{i}")
            t.t_start, t.t_end = 0.0, 1.0  # unit duration
            tr.register(t)
            tasks.append(t)
        return tasks

    def test_networkx_dag_structure(self):
        tasks = self._chain(4)
        g = build_networkx_dag(tasks)
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 3
        import networkx as nx

        assert nx.is_directed_acyclic_graph(g)

    def test_critical_path_of_chain(self):
        tasks = self._chain(5)
        assert critical_path_length(tasks) == pytest.approx(5.0)

    def test_critical_path_empty(self):
        assert critical_path_length([]) == 0.0

    def test_independent_tasks_path_is_max(self):
        tr = DependencyTracker()
        tasks = []
        for i in range(3):
            h = DataHandle(i)
            t = make_task([(h, RW)])
            t.t_start, t.t_end = 0.0, float(i + 1)
            tr.register(t)
            tasks.append(t)
        assert critical_path_length(tasks) == pytest.approx(3.0)


class TestTaskValidation:
    def test_bad_access_types(self):
        h = DataHandle(0)
        with pytest.raises(TypeError):
            Task(noop, [("not a handle", R)])
        with pytest.raises(TypeError):
            Task(noop, [(h, "R")])

    def test_payload_order(self):
        ha, hb = DataHandle("a"), DataHandle("b")
        t = Task(lambda a, b: (a, b), [(ha, R), (hb, R)])
        assert t.execute() == ("a", "b")

    def test_args_kwargs_forwarded(self):
        h = DataHandle(10)
        t = Task(lambda x, y, z=0: x + y + z, [(h, R)], args=(5,), kwargs={"z": 2})
        assert t.execute() == 17
