"""Triangular solves against a dense tile Cholesky factor.

Forward/backward block substitution over the tile grid. The right-hand
side is partitioned with the same :class:`TileGrid`; each step is one
small TRSM plus GEMM updates — the structure the paper's prediction
operation (eq. (4)) executes after factorizing ``Sigma_22``.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from ..exceptions import ShapeError
from .tile_matrix import TileMatrix

__all__ = ["tile_solve_triangular", "tile_cholesky_solve"]


def tile_solve_triangular(
    factor: TileMatrix, b: np.ndarray, *, trans: bool = False
) -> np.ndarray:
    """Solve ``L x = b`` (or ``L^T x = b`` with ``trans=True``).

    Parameters
    ----------
    factor:
        Lower tile Cholesky factor (``symmetric_lower`` layout holds the
        lower triangle; its strictly-upper mirror is *not* part of L).
    b:
        ``(n,)`` or ``(n, m)`` right-hand side (not modified).

    Returns
    -------
    Solution with the same shape as ``b``.
    """
    g = factor.grid
    if b.shape[0] != g.n:
        raise ShapeError(f"rhs leading dimension {b.shape[0]} != {g.n}")
    blocks = g.partition(np.asarray(b, dtype=np.float64))
    nt = g.nt
    if not trans:
        for i in range(nt):
            for j in range(i):
                blocks[i] -= factor.tile(i, j) @ blocks[j]
            blocks[i] = sla.solve_triangular(
                factor.tile(i, i), blocks[i], lower=True, check_finite=False
            )
    else:
        for i in range(nt - 1, -1, -1):
            for j in range(i + 1, nt):
                # L^T's (i, j) block is L(j, i)^T.
                blocks[i] -= factor.tile(j, i).T @ blocks[j]
            blocks[i] = sla.solve_triangular(
                factor.tile(i, i), blocks[i], lower=True, trans="T", check_finite=False
            )
    return g.unpartition(blocks)


def tile_cholesky_solve(factor: TileMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` from the tile factor (forward then backward)."""
    y = tile_solve_triangular(factor, b, trans=False)
    return tile_solve_triangular(factor, y, trans=True)
