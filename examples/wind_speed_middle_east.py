#!/usr/bin/env python
"""Wind-speed case study (paper §VIII-D.2, Table II) with prediction.

Fits region-wise Matérn models to the synthetic substitute for the
WRF-generated Middle-East wind-speed data (Table II full-tile estimates
as ground truth) and validates each fit by kriging 50 held-out points —
the paper's Figure 9 protocol.

Run:  python examples/wind_speed_middle_east.py [region ...]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import MLEstimator
from repro.data import WIND_SPEED_REGION_THETA, WindSpeedGenerator, train_test_split
from repro.mle import mean_squared_error
from repro.optim import default_matern_bounds


def study_region(region: str, n: int = 320, n_test: int = 50) -> None:
    gen = WindSpeedGenerator(points_per_region=n)
    ds = gen.region_dataset(region, seed=200)
    truth = np.asarray(ds.meta["theta_true"])
    train, test = train_test_split(ds, n_test, seed=201)
    truth_str = ", ".join(f"{v:g}" for v in truth)
    print(f"\nRegion {region}: truth = ({truth_str})  ({train.n} fit / {test.n} test)")
    print(f"{'technique':>14}  {'variance':>9}  {'range':>8}  {'smooth':>7}  {'pred MSE':>9}")
    bounds = default_matern_bounds(train.values, max_range=60.0)
    for variant, acc in (("tlr", 1e-5), ("tlr", 1e-7), ("tlr", 1e-9), ("full-tile", None)):
        est = MLEstimator.from_dataset(train, variant=variant, acc=acc, tile_size=68)
        fit = est.fit(maxiter=60, bounds=bounds, x0=truth)
        pred = est.predict(fit, test.locations)
        mse = mean_squared_error(test.values, pred)
        label = "Full-tile" if acc is None else f"TLR {acc:.0e}"
        print(
            f"{label:>14}  {fit.theta[0]:9.3f}  {fit.theta[1]:8.3f}  "
            f"{fit.theta[2]:7.3f}  {mse:9.4f}"
        )


def main() -> None:
    regions = sys.argv[1:] or ["R1", "R3"]
    for region in regions:
        if region not in WIND_SPEED_REGION_THETA:
            raise SystemExit(f"unknown region {region!r}; choose from R1..R4")
        study_region(region)
    print(
        "\nPattern to observe (paper Table II / Fig. 9): wind fields are"
        "\nsmoother (theta3 ~ 1.2-1.4) and strongly correlated, so parameter"
        "\nestimates demand tighter TLR accuracy — yet prediction MSE stays"
        "\nclose to Full-tile across thresholds."
    )


if __name__ == "__main__":
    main()
