"""Durable Nelder-Mead checkpoints: crash-safe persistence of fit state.

A long MLE fit is a long sequence of expensive likelihood evaluations
wrapped around a tiny optimizer state — the simplex, its objective
values, and two counters (:class:`~repro.optim.neldermead.SimplexState`).
Persisting that state after an iteration makes the whole fit resumable:
feed the snapshot back through ``nelder_mead(..., state=...)`` and the
continuation is bit-identical to a run that was never interrupted (the
algorithm is deterministic given the simplex and the objective; the
parity is property-tested in ``tests/fitting/test_checkpoint.py``).

Writes are atomic (temp file + ``os.replace``), so a process killed
mid-write leaves the *previous* checkpoint intact instead of a torn
file — the invariant the orchestrator's auto-restart relies on.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..exceptions import CheckpointError
from ..optim.neldermead import SimplexState
from ..optim.result import HistoryEntry

__all__ = ["save_state", "load_state", "Checkpointer"]

#: Format marker inside the ``.npz``; bumped on breaking layout changes.
CHECKPOINT_VERSION = 1


def save_state(path: Union[str, Path], state: SimplexState) -> Path:
    """Atomically persist a :class:`SimplexState` snapshot at ``path``.

    The snapshot lands as a single ``.npz`` holding the simplex, the
    objective values, the counters, and the flattened history
    trajectory. ``os.replace`` makes the swap atomic on POSIX, so
    readers only ever observe a complete checkpoint.
    """
    path = Path(path)
    n = state.simplex.shape[1] if state.simplex.ndim == 2 else 0
    hist_iters = np.array([e.iteration for e in state.history], dtype=np.int64)
    hist_funs = np.array([e.fun for e in state.history], dtype=np.float64)
    if state.history:
        hist_thetas = np.stack([np.asarray(e.theta, dtype=np.float64) for e in state.history])
    else:
        hist_thetas = np.zeros((0, n), dtype=np.float64)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez(
            fh,
            version=np.int64(CHECKPOINT_VERSION),
            simplex=np.asarray(state.simplex, dtype=np.float64),
            fvals=np.asarray(state.fvals, dtype=np.float64),
            iteration=np.int64(state.iteration),
            nfev=np.int64(state.nfev),
            hist_iters=hist_iters,
            hist_funs=hist_funs,
            hist_thetas=hist_thetas,
        )
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    # Directory fsync so the rename itself survives a host crash — a
    # replayed journal must not resurrect the previous checkpoint after
    # the job state already advanced past it.
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:
        return path
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)
    return path


def load_state(path: Union[str, Path]) -> Optional[SimplexState]:
    """Read a checkpoint written by :func:`save_state`.

    Returns ``None`` when no checkpoint exists yet (a fresh fit).

    Raises
    ------
    CheckpointError
        The file exists but is truncated, not a checkpoint, or from an
        unsupported version — the caller decides whether to restart
        from scratch or surface the corruption.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        with np.load(path) as npz:
            version = int(npz["version"])
            if version != CHECKPOINT_VERSION:
                raise CheckpointError(
                    f"checkpoint version {version} unsupported "
                    f"(this build reads version {CHECKPOINT_VERSION})"
                )
            simplex = np.asarray(npz["simplex"], dtype=np.float64)
            fvals = np.asarray(npz["fvals"], dtype=np.float64)
            iteration = int(npz["iteration"])
            nfev = int(npz["nfev"])
            hist_iters = npz["hist_iters"]
            hist_funs = npz["hist_funs"]
            hist_thetas = npz["hist_thetas"]
    except CheckpointError:
        raise
    except Exception as exc:  # zipfile/KeyError/ValueError → one typed error
        raise CheckpointError(f"checkpoint at {path} is unreadable: {exc}") from exc
    if len(hist_iters) != len(hist_funs) or len(hist_iters) != len(hist_thetas):
        raise CheckpointError(f"checkpoint at {path} has inconsistent history arrays")
    history = [
        HistoryEntry(int(it), np.asarray(theta, dtype=np.float64), float(fun))
        for it, theta, fun in zip(hist_iters, hist_thetas, hist_funs)
    ]
    return SimplexState(
        simplex=simplex, fvals=fvals, iteration=iteration, nfev=nfev, history=history
    )


class Checkpointer:
    """``state_callback`` adapter that persists every ``every``-th state.

    Wire an instance into ``nelder_mead(..., state_callback=ckpt)`` and
    the fit leaves a resumable trail at ``path`` with bounded I/O
    overhead. The final state before a normal return is *not* special —
    a resume from the last written checkpoint replays at most
    ``every - 1`` iterations.
    """

    def __init__(self, path: Union[str, Path], *, every: int = 1) -> None:
        if every < 1:
            raise CheckpointError(f"checkpoint interval must be >= 1, got {every}")
        self.path = Path(path)
        self.every = int(every)
        self.n_saved = 0
        self.last_iteration: Optional[int] = None

    def __call__(self, state: SimplexState) -> None:
        if state.iteration % self.every == 0:
            save_state(self.path, state)
            self.n_saved += 1
            self.last_iteration = state.iteration

    def load(self) -> Optional[SimplexState]:
        """The last persisted state, or ``None`` for a fresh fit."""
        return load_state(self.path)
