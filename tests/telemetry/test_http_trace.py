"""End-to-end trace parity over HTTP.

The headline acceptance checks of the telemetry PR:

* One ``client.predict`` yields **one connected trace** — client,
  router, worker, service, and engine spans all share the trace id and
  nest under a single root — on every substrate and both transports.
* Child durations nest inside their parents (parallel ``task:*`` spans
  adopted from the runtime are checked individually, not summed —
  they overlap by design).
* JSON and binary transports produce the same service/engine span
  structure (transport-layer ``wire.*`` spans and cold-load
  ``registry.load`` naturally differ and are excluded).
* Telemetry is observability, not physics: predictions are
  **bit-identical** with telemetry on and off.
* The Prometheus exposition served over HTTP passes the format lint,
  and unknown trace ids come back as a typed 404.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import generate_irregular_grid, sample_gaussian_field
from repro.exceptions import TraceNotFoundError
from repro.kernels import MaternCovariance
from repro.mle import PredictionEngine
from repro.resilience.faults import FaultPlan, FaultRule, arm, disarm
from repro.serving import ModelBundle, ServingClient, ServingServer
from repro.telemetry import context as tctx
from repro.telemetry.export import lint_prometheus
from repro.telemetry.spans import configure, reset_telemetry

N, NB, ACC = 144, 36, 1e-9
VARIANTS = ("full-block", "full-tile", "tlr")

# Structure comparison ignores spans whose presence legitimately varies
# per request: transport codecs (JSON requests never hit wire.*), cold
# vs warm engine loads, and runtime task adoption (task count depends
# on scheduling).
_STRUCTURAL_EXCLUDE = ("wire.", "registry.load", "task:")


def _make_bundle(variant, *, factor=True):
    locs = generate_irregular_grid(N, seed=0)
    model = MaternCovariance(1.0, 0.1, 0.5)
    z = sample_gaussian_field(locs, model, seed=1)
    bundle = ModelBundle(
        model=model, locations=locs, z=z, variant=variant, tile_size=NB, acc=ACC
    )
    if factor:
        bundle.factor = bundle.build_engine().factor()
    return bundle


@pytest.fixture(autouse=True)
def _armed():
    # Runs after the conftest reset: every test in this module sees the
    # router/client process armed, matching the servers built below.
    configure(enabled=True)
    yield


@pytest.fixture(scope="module")
def bundle_paths(tmp_path_factory):
    root = tmp_path_factory.mktemp("bundles")
    paths = {v: _make_bundle(v).save(root / f"{v}.bundle") for v in VARIANTS}
    # No precomputed factor: the first predict factorizes inside the
    # request, which is where runtime task adoption happens.
    paths["cold-tile"] = _make_bundle("full-tile", factor=False).save(
        root / "cold-tile.bundle"
    )
    return paths


@pytest.fixture(scope="module")
def server(bundle_paths):
    configure(enabled=True)
    with ServingServer(
        dict(bundle_paths),
        num_workers=2,
        registry_options={"workers_per_shard": 2},
        service_options={"batch_window": 0.005, "max_batch": 8},
    ) as srv:
        yield srv


@pytest.fixture(scope="module")
def plain_server(bundle_paths):
    # Built while telemetry is unarmed, so its workers spawn with
    # telemetry off — the "off" half of the on/off parity check.
    reset_telemetry()
    try:
        srv = ServingServer(
            dict(bundle_paths),
            num_workers=1,
            service_options={"batch_window": 0.005, "max_batch": 8},
        )
    finally:
        configure(enabled=True)
    with srv:
        yield srv


@pytest.fixture(scope="module")
def client(server):
    with ServingClient(server.url) as cli:
        yield cli


@pytest.fixture(scope="module")
def bclient(server):
    with ServingClient(server.url, transport="binary") as cli:
        yield cli


@pytest.fixture(scope="module")
def targets():
    return np.ascontiguousarray(np.random.default_rng(5).random((11, 2)))


def _traced_predict(cli, variant, targets, **kw):
    """Predict under a fresh activated trace; return (prediction, tree)."""
    ctx = tctx.new_trace()
    with tctx.activate(ctx):
        pred = cli.predict(variant, targets, **kw)
    return pred, cli.trace(ctx.trace_id)


# --------------------------------------------------------------------------
# One request, one connected tree — every substrate, both transports.
# --------------------------------------------------------------------------


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("which", ["json", "binary"])
def test_single_connected_trace(client, bclient, targets, variant, which):
    cli = client if which == "json" else bclient
    _, tree = _traced_predict(cli, variant, targets)
    assert tree["span_count"] == len(tree["spans"])
    # Connectivity: exactly one root, and it is the client span.
    assert len(tree["tree"]) == 1
    assert tree["tree"][0]["name"] == "client.predict"
    names = {s["name"] for s in tree["spans"]}
    assert {
        "client.predict",
        "router.predict",
        "worker.predict",
        "service.predict",
        "service.execute",
        "engine.predict",
    } <= names
    # The tree genuinely crosses the process boundary.
    assert len({s["pid"] for s in tree["spans"]}) >= 2


def _check_nesting(node, eps=0.05):
    children = node["children"]
    # Parallel task:* spans run concurrently on runtime workers; their
    # durations overlap, so they are bounded individually, not summed.
    # service.coalesce is a different *view* of time already counted by
    # service.queue_wait (the lead request's batching wait) — also
    # excluded from the sum.
    summable = [
        c for c in children
        if not c["name"].startswith("task:") and c["name"] != "service.coalesce"
    ]
    assert sum(c["duration"] for c in summable) <= node["duration"] + eps, node["name"]
    for c in children:
        assert c["duration"] <= node["duration"] + eps, c["name"]
        assert c["trace_id"] == node["trace_id"]
        _check_nesting(c, eps)


@pytest.mark.parametrize("variant", VARIANTS)
def test_child_durations_nest(client, targets, variant):
    _, tree = _traced_predict(client, variant, targets)
    (root,) = tree["tree"]
    _check_nesting(root)


def _structure(tree):
    return sorted(
        s["name"]
        for s in tree["spans"]
        if not s["name"].startswith(_STRUCTURAL_EXCLUDE)
    )


@pytest.mark.parametrize("variant", VARIANTS)
def test_structure_identical_json_vs_binary(client, bclient, targets, variant):
    # Warm both paths first so neither trace carries a cold load.
    client.predict(variant, targets)
    bclient.predict(variant, targets)
    _, via_json = _traced_predict(client, variant, targets)
    _, via_binary = _traced_predict(bclient, variant, targets)
    assert _structure(via_json) == _structure(via_binary)


def test_runtime_task_spans_adopted(client, targets):
    # workers_per_shard=2 gives tiled engines a real Runtime; the
    # cold-tile bundle carries no factor, so this request runs the
    # factorization and its TraceEvents must surface as task:* spans.
    _, tree = _traced_predict(client, "cold-tile", targets)
    tasks = [s for s in tree["spans"] if s["name"].startswith("task:")]
    assert tasks
    ids = {s["span_id"] for s in tree["spans"]}
    for t in tasks:
        assert t["parent_id"] in ids


# --------------------------------------------------------------------------
# Observability must not perturb the numerics.
# --------------------------------------------------------------------------


@pytest.mark.parametrize("variant", VARIANTS)
def test_predictions_bit_identical_on_vs_off(
    bundle_paths, client, plain_server, targets, variant
):
    reference = PredictionEngine.from_bundle(bundle_paths[variant]).predict(targets)
    with ServingClient(plain_server.url) as plain_cli:
        untraced = plain_cli.predict(variant, targets)
    traced, _ = _traced_predict(client, variant, targets)
    np.testing.assert_array_equal(traced, reference)
    np.testing.assert_array_equal(untraced, reference)


# --------------------------------------------------------------------------
# Export surfaces over HTTP.
# --------------------------------------------------------------------------


def test_prometheus_endpoint_passes_lint(client, targets):
    client.predict("tlr", targets)
    text = client.metrics(format="prometheus")
    lint_prometheus(text)
    assert "repro_service_requests_total" in text
    assert "repro_service_latency_seconds_bucket" in text
    # JSON stays the default shape for existing consumers.
    as_json = client.metrics()
    assert "workers" in as_json


def test_unknown_trace_is_typed_404(client):
    with pytest.raises(TraceNotFoundError):
        client.trace("deadbeefdeadbeef")


# --------------------------------------------------------------------------
# Chaos events land on request traces (seeded FaultPlan over HTTP).
# --------------------------------------------------------------------------


@pytest.fixture(scope="module")
def faulty_server(bundle_paths):
    configure(enabled=True)
    plan = FaultPlan(
        rules=[FaultRule(site="engine.predict", action="delay", delay=0.001, count=3)],
        seed=11,
    )
    arm(plan, propagate=True)  # the spawned worker arms from the env
    try:
        with ServingServer({"tlr": bundle_paths["tlr"]}, num_workers=1) as srv:
            disarm()  # worker already spawned with the plan in its env
            yield srv
    finally:
        disarm()


def test_fault_firing_annotates_the_trace(faulty_server, targets):
    with ServingClient(faulty_server.url) as cli:
        _, tree = _traced_predict(cli, "tlr", targets)
    pairs = [
        tuple(a) for s in tree["spans"] for a in (s.get("annotations") or [])
    ]
    assert any(
        k == "fault" and v.startswith("engine.predict#") and v.endswith(":delay")
        for k, v in pairs
    ), pairs
