#!/usr/bin/env python
"""Fit once, predict many times: the PredictionEngine workflow.

The paper's prediction operation (eq. (4)) costs as much as one MLE
iteration — both are dominated by the Cholesky of ``Sigma_22`` — which
is wasteful when prediction is invoked repeatedly over one fitted model
(many realizations, many target grids). This example shows the engine
amortizing that cost:

1. fit a Matérn model by TLR MLE on 700 training points;
2. predict a 100-point holdout through ``est.predict`` — the first call
   factorizes ``Sigma_22`` once (reusing the fit's cached distance
   blocks, and the fit's own final factorization when the optimizer's
   last evaluation landed on the optimum);
3. predict a *batch* of 16 simulated realizations in one multi-RHS call
   against the same factorization;
4. predict on a fresh evaluation grid and attach kriging variances —
   still no new factorization, on any substrate.

Run:  python examples/prediction_batch.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.data import generate_irregular_grid, sample_gaussian_field, sort_locations
from repro.kernels import MaternCovariance
from repro.mle import MLEstimator, mean_squared_error
from repro.runtime import Runtime


def main() -> None:
    rng = np.random.default_rng(7)
    n, m = 700, 100
    locs = generate_irregular_grid(n + m, seed=0)
    locs, _, _ = sort_locations(locs)
    truth = MaternCovariance(1.0, 0.12, 0.5)
    z = sample_gaussian_field(locs, truth, seed=1)
    hold = rng.choice(n + m, size=m, replace=False)
    mask = np.ones(n + m, dtype=bool)
    mask[hold] = False
    train_locs, hold_locs = locs[mask], locs[hold]
    train_z, hold_z = z[mask], z[hold]

    with Runtime() as rt:
        est = MLEstimator(
            train_locs, train_z, variant="tlr", acc=1e-7, tile_size=128, runtime=rt
        )
        fit = est.fit(maxiter=80)
        print(f"fitted theta = {np.round(fit.theta, 4)}  ({fit.n_evals} evaluations)")

        # -- first predict: factorizes Sigma_22 (or adopts the fit's factor)
        t0 = time.perf_counter()
        pred = est.predict(fit, hold_locs)
        t_first = time.perf_counter() - t0
        print(f"holdout MSE = {mean_squared_error(hold_z, pred):.4f}")

        # -- second predict: same fitted model -> no generation, no Cholesky
        t0 = time.perf_counter()
        est.predict(fit, hold_locs)
        t_second = time.perf_counter() - t0
        engine = est.predictor(fit)
        print(
            f"predict wall time: first {t_first * 1e3:.1f} ms, "
            f"second {t_second * 1e3:.1f} ms "
            f"({engine.n_factorizations} factorization(s) total)"
        )

        # -- batched multi-RHS: 16 realizations against one factorization
        batch = train_z[:, None] + 0.05 * rng.standard_normal((n, 16))
        t0 = time.perf_counter()
        preds = est.predict(fit, hold_locs, z=batch)
        t_batch = time.perf_counter() - t0
        print(
            f"batched predict of {preds.shape[1]} realizations: "
            f"{t_batch * 1e3:.1f} ms, still {engine.n_factorizations} factorization(s)"
        )

        # -- a fresh target grid + kriging variance, same factorization
        grid = generate_irregular_grid(64, seed=9) * 0.8 + 0.1
        mean = est.predict(fit, grid)
        var = est.conditional_variance(fit, grid)
        print(
            f"evaluation grid: mean in [{mean.min():.2f}, {mean.max():.2f}], "
            f"kriging sd in [{np.sqrt(var).min():.3f}, {np.sqrt(var).max():.3f}], "
            f"factorizations = {engine.n_factorizations}"
        )

        stats = engine.stats()
        if "cross_cache" in stats:
            cc = stats["cross_cache"]
            print(f"cross-distance cache: {cc['hits']} hits / {cc['misses']} misses")


if __name__ == "__main__":
    main()
