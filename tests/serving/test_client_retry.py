"""ServingClient retry semantics, tested against a fake transport.

The transport layer (``_request_once``) is monkeypatched so these tests
pin down the *decision logic*: which rejections are resubmitted, with
which (deterministic) backoff, and which failures must never be retried
because the request may already have executed server-side.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import (
    CircuitOpenError,
    LoadShedError,
    ModelNotFoundError,
    ServerError,
    ServiceOverloadedError,
)
from repro.resilience import RetryPolicy
from repro.serving import ServingClient


class FakeTransport:
    """Scripted ``_request_once`` stand-in: raises each queued response
    in turn, then succeeds with ``payload``."""

    def __init__(self, failures, payload=None):
        self.failures = list(failures)
        self.payload = payload if payload is not None else {"ok": True}
        self.calls = []

    def __call__(self, method, path, body=None, headers=None):
        self.calls.append((method, path))
        if self.failures:
            raise self.failures.pop(0)
        return self.payload


def _client(monkeypatch, transport, policy=None, sleeps=None):
    cli = ServingClient("http://127.0.0.1:9", retry_policy=policy)
    monkeypatch.setattr(cli, "_request_once", transport)
    if sleeps is not None:
        import repro.serving.client as client_mod

        monkeypatch.setattr(client_mod.time, "sleep", sleeps.append)
    return cli


def test_no_policy_surfaces_rejections_unchanged(monkeypatch):
    transport = FakeTransport([LoadShedError("full", retry_after=0.1)])
    cli = _client(monkeypatch, transport)
    with pytest.raises(LoadShedError):
        cli._request("POST", "/v1/predict", {})
    assert len(transport.calls) == 1
    assert cli.n_retries == 0


@pytest.mark.parametrize(
    "rejection",
    [
        LoadShedError("shed"),
        CircuitOpenError("open"),
        ServiceOverloadedError("queue full"),
    ],
)
def test_not_executed_rejections_are_retried_under_a_policy(monkeypatch, rejection):
    policy = RetryPolicy(max_attempts=3, base_delay=0.01, seed=2)
    transport = FakeTransport([rejection])
    sleeps = []
    cli = _client(monkeypatch, transport, policy, sleeps)
    assert cli._request("POST", "/v1/predict", {}) == {"ok": True}
    assert len(transport.calls) == 2
    assert cli.n_retries == 1


def test_backoff_follows_the_policy_deterministic_jitter(monkeypatch):
    policy = RetryPolicy(max_attempts=4, base_delay=0.02, jitter=0.5, seed=9)
    transport = FakeTransport([LoadShedError("shed"), LoadShedError("shed")])
    sleeps = []
    cli = _client(monkeypatch, transport, policy, sleeps)
    cli._request("POST", "/v1/predict", {})
    # The exact seeded jitter curve — reproducible across runs.
    assert sleeps == [policy.delay(0), policy.delay(1)]
    assert sleeps == [
        RetryPolicy(max_attempts=4, base_delay=0.02, jitter=0.5, seed=9).delay(i)
        for i in range(2)
    ]


def test_server_retry_after_hint_wins_over_the_backoff_curve(monkeypatch):
    policy = RetryPolicy(max_attempts=3, base_delay=60.0, jitter=0.0, seed=1)
    transport = FakeTransport([CircuitOpenError("open", retry_after=0.03)])
    sleeps = []
    cli = _client(monkeypatch, transport, policy, sleeps)
    cli._request("POST", "/v1/predict", {})
    assert sleeps == [0.03]  # the hint, not the 60s policy delay


def test_budget_exhaustion_reraises_the_rejection(monkeypatch):
    policy = RetryPolicy(max_attempts=2, base_delay=0.0)
    transport = FakeTransport([LoadShedError("shed"), LoadShedError("shed"), LoadShedError("shed")])
    cli = _client(monkeypatch, transport, policy, [])
    with pytest.raises(LoadShedError):
        cli._request("POST", "/v1/predict", {})
    assert len(transport.calls) == 2  # the budget, not the failure count
    assert cli.n_retries == 1


@pytest.mark.parametrize(
    "executed_failure",
    [
        ServerError("worker pipe timed out"),  # the request may have run
        ModelNotFoundError("nope"),  # a definitive answer, not a rejection
        ValueError("bad targets"),
    ],
)
def test_failures_that_may_have_executed_are_never_retried(monkeypatch, executed_failure):
    """A POST whose body was sent must not be resubmitted on generic
    errors — predicts would run twice. Only the server's explicit
    not-executed rejections are retryable."""
    policy = RetryPolicy(max_attempts=5, base_delay=0.0)
    transport = FakeTransport([executed_failure])
    cli = _client(monkeypatch, transport, policy, [])
    with pytest.raises(type(executed_failure)):
        cli._request("POST", "/v1/predict", {})
    assert len(transport.calls) == 1
    assert cli.n_retries == 0


def test_predict_goes_through_the_retry_loop(monkeypatch):
    policy = RetryPolicy(max_attempts=3, base_delay=0.0)
    transport = FakeTransport(
        [LoadShedError("shed")],
        payload={"model_id": "m", "prediction": [1.0, 2.0], "degraded": False},
    )
    cli = _client(monkeypatch, transport, policy, [])
    np.testing.assert_array_equal(cli.predict("m", [[0.1, 0.2]]), [1.0, 2.0])
    assert cli.n_retries == 1


def test_deadline_travels_as_a_header_not_body(monkeypatch):
    seen = {}

    def transport(method, path, body=None, headers=None):
        seen.update(body=body, headers=headers)
        return {"model_id": "m", "prediction": [0.0], "degraded": False}

    cli = ServingClient("http://127.0.0.1:9")
    monkeypatch.setattr(cli, "_request_once", transport)
    cli.predict("m", [[0.1, 0.2]], deadline=2.5)
    assert seen["headers"] == {"X-Repro-Deadline": "2.500000"}
    assert "deadline" not in seen["body"]


def test_predict_detail_surfaces_the_degraded_flag(monkeypatch):
    transport = FakeTransport(
        [], payload={"model_id": "m", "prediction": [3.0], "degraded": True}
    )
    cli = _client(monkeypatch, transport)
    value, flags = cli.predict("m", [[0.1, 0.2]], detail=True)
    np.testing.assert_array_equal(value, [3.0])
    assert flags == {"degraded": True}
