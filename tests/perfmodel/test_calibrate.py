"""Edge cases of the telemetry-sink calibration reader.

:func:`load_spans` is the autotuner's measurement substrate — these
tests pin down the failure modes a chaos run or a misconfigured sink
produces: torn JSONL tails from killed processes, sinks that exist but
hold nothing, and spans that never include a ``stage:*`` phase.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import CalibrationError, TelemetryError
from repro.perfmodel import estimate_mle_iteration, get_machine
from repro.perfmodel.calibrate import (
    compare_to_estimate,
    format_report,
    load_spans,
    phase_costs,
)


def _span(name: str, duration: float, **extra) -> dict:
    rec = {
        "trace_id": "t" * 16,
        "span_id": "s" * 8,
        "parent_id": None,
        "name": name,
        "t_start": 1.0,
        "duration": duration,
        "pid": 1234,
    }
    rec.update(extra)
    return rec


def _write_sink(tmp_path, records, *, torn_tail: str = ""):
    path = tmp_path / "spans-1234.jsonl"
    body = "".join(json.dumps(r) + "\n" for r in records) + torn_tail
    path.write_text(body, encoding="utf-8")
    return path


def test_torn_tail_line_is_skipped_not_fatal(tmp_path):
    good = [_span("stage:generation", 0.25), _span("stage:solve", 0.5)]
    # A process killed mid-write leaves a truncated final line.
    _write_sink(tmp_path, good, torn_tail='{"name": "stage:factorization", "dur')
    spans = load_spans(tmp_path)
    assert [s["name"] for s in spans] == ["stage:generation", "stage:solve"]


def test_records_missing_required_keys_are_skipped(tmp_path):
    path = tmp_path / "spans-1.jsonl"
    path.write_text(
        json.dumps({"name": "orphan"})  # no duration
        + "\n"
        + json.dumps(["not", "a", "dict"])
        + "\n"
        + json.dumps(_span("stage:solve", 0.1))
        + "\n",
        encoding="utf-8",
    )
    spans = load_spans(tmp_path)
    assert len(spans) == 1 and spans[0]["name"] == "stage:solve"


def test_missing_directory_raises_telemetry_error(tmp_path):
    with pytest.raises(TelemetryError, match="does not exist"):
        load_spans(tmp_path / "never-created")


def test_empty_directory_raises_calibration_error(tmp_path):
    with pytest.raises(CalibrationError, match="no spans-\\*.jsonl files"):
        load_spans(tmp_path)


def test_empty_directory_allow_empty_returns_list(tmp_path):
    assert load_spans(tmp_path, allow_empty=True) == []


def test_files_with_only_garbage_raise_calibration_error(tmp_path):
    (tmp_path / "spans-9.jsonl").write_text("not json\n{torn", encoding="utf-8")
    with pytest.raises(CalibrationError, match="contain no span records"):
        load_spans(tmp_path)
    assert load_spans(tmp_path, allow_empty=True) == []


def test_only_non_stage_spans_compare_to_empty_join(tmp_path):
    _write_sink(
        tmp_path,
        [_span("wire.encode", 0.01), _span("service.queue_wait", 0.002)],
    )
    costs = phase_costs(load_spans(tmp_path))
    est = estimate_mle_iteration(
        1000, variant="full-tile", nb=250, machine=get_machine("broadwell")
    )
    assert compare_to_estimate(costs, est) == {}


def test_compare_to_estimate_golden_round_trip(tmp_path):
    """Spans whose durations *are* the model's predictions join at ratio 1."""
    machine = get_machine("broadwell")
    est = estimate_mle_iteration(2000, variant="full-tile", nb=250, machine=machine)
    records = [
        _span(f"stage:{phase}", seconds)
        for phase, seconds in est.breakdown.items()
        if seconds > 0
    ]
    _write_sink(tmp_path, records)
    joined = compare_to_estimate(phase_costs(load_spans(tmp_path)), est)
    assert set(joined) == {p for p, s in est.breakdown.items() if s > 0}
    for phase, row in joined.items():
        assert row["ratio"] == pytest.approx(1.0, rel=1e-9)
        assert row["measured_s"] == pytest.approx(row["predicted_s"], rel=1e-9)


def test_compare_to_estimate_rejects_non_estimate():
    with pytest.raises(TelemetryError, match="stage breakdown"):
        compare_to_estimate({}, object())


def test_format_report_renders_every_phase(tmp_path):
    _write_sink(tmp_path, [_span("stage:solve", 0.5), _span("stage:solve", 0.7)])
    report = format_report(phase_costs(load_spans(tmp_path)))
    assert "stage:solve" in report
    assert "1.2000" in report  # total_s column
