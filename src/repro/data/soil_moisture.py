"""Synthetic substitute for the Mississippi-basin soil-moisture dataset.

**Substitution note (see DESIGN.md §4).** The paper uses high-resolution
daily soil moisture at the top layer of the Mississippi River Basin
(Jan 1 2004; 1830 x 1329 grid at 0.0083°, ~2.15M measurements), fits a
zero-mean Gaussian process with Matérn covariance per region, and reports
the estimates in Table I. That data product is not redistributable here,
so this module generates Gaussian random fields with **the paper's
full-tile Table I estimates as ground truth**, on the same bounding box,
with great-circle distances. What Table I actually demonstrates — the
agreement pattern between TLR estimates at ε ∈ {1e-5..1e-12} and the
full-tile reference, including the drift on strongly-correlated regions
R7/R8 — depends only on the covariance structure, which is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..kernels.covariance import MaternCovariance
from ..utils.rng import SeedLike, as_generator, spawn_generators
from .datasets import GeoDataset
from .fields import sample_gaussian_field
from .regions import Region, partition_bbox

__all__ = [
    "SOIL_MOISTURE_BBOX",
    "SOIL_MOISTURE_REGION_THETA",
    "SoilMoistureGenerator",
    "make_soil_moisture_dataset",
]

#: Mississippi-basin bounding box (lon_min, lon_max, lat_min, lat_max).
#: 1830 x 1329 cells at 0.0083 degrees spans ~15.2 x 11.0 degrees.
SOIL_MOISTURE_BBOX: Tuple[float, float, float, float] = (-95.0, -79.8, 30.0, 41.0)

#: Paper Table I, "Full-tile" columns: region -> (variance, range, smoothness).
#: Ranges are great-circle degrees (the paper calibrates 1 degree ~ 87.5 km).
SOIL_MOISTURE_REGION_THETA: Dict[str, Tuple[float, float, float]] = {
    "R1": (0.852, 5.994, 0.559),
    "R2": (0.380, 10.434, 0.490),
    "R3": (0.277, 10.878, 0.507),
    "R4": (0.410, 7.770, 0.527),
    "R5": (0.836, 9.213, 0.496),
    "R6": (0.619, 10.323, 0.523),
    "R7": (0.553, 19.203, 0.508),
    "R8": (0.906, 27.861, 0.461),
}

#: Fraction of grid cells without measurements in the real product
#: (278,182 of 2,432,070); the generator can reproduce the gaps.
MISSING_FRACTION = 278_182 / 2_432_070


@dataclass
class SoilMoistureGenerator:
    """Generator for per-region synthetic soil-moisture fields.

    Parameters
    ----------
    points_per_region:
        Locations sampled per region (the paper's regions hold ~250K; the
        default is laptop-scale, and benches override it).
    missing_fraction:
        Fraction of candidate points dropped to mimic the real product's
        gaps.
    jitter_cells:
        Locations are drawn on a perturbed lattice within each region to
        avoid near-duplicates (as in the paper's synthetic scheme).
    """

    points_per_region: int = 800
    missing_fraction: float = MISSING_FRACTION
    jitter_cells: float = 0.4

    def regions(self) -> List[Region]:
        """The eight regions R1..R8 as a 4 x 2 grid over the basin box."""
        return partition_bbox(SOIL_MOISTURE_BBOX, nx=4, ny=2, prefix="R")

    def region_model(self, name: str) -> MaternCovariance:
        """Ground-truth Matérn model for region ``name`` (Table I full-tile)."""
        theta1, theta2, theta3 = SOIL_MOISTURE_REGION_THETA[name]
        return MaternCovariance(theta1, theta2, theta3, metric="gcd")

    def _region_locations(self, region: Region, n: int, rng: np.random.Generator) -> np.ndarray:
        """Perturbed-lattice (lon, lat) points covering ``region``."""
        side = int(np.ceil(np.sqrt(n / (1.0 - self.missing_fraction))))
        lon_step = (region.lon_max - region.lon_min) / side
        lat_step = (region.lat_max - region.lat_min) / side
        i, j = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
        lon = region.lon_min + (i + 0.5 + rng.uniform(-self.jitter_cells, self.jitter_cells, i.shape)) * lon_step
        lat = region.lat_min + (j + 0.5 + rng.uniform(-self.jitter_cells, self.jitter_cells, j.shape)) * lat_step
        pts = np.column_stack([lon.ravel(), lat.ravel()])
        # Drop "missing" cells, then trim to exactly n points.
        keep = rng.random(pts.shape[0]) >= self.missing_fraction
        pts = pts[keep]
        if pts.shape[0] < n:  # extremely unlikely; top up with uniforms
            extra = np.column_stack(
                [
                    rng.uniform(region.lon_min, region.lon_max, n - pts.shape[0]),
                    rng.uniform(region.lat_min, region.lat_max, n - pts.shape[0]),
                ]
            )
            pts = np.vstack([pts, extra])
        idx = rng.choice(pts.shape[0], size=n, replace=False)
        return pts[np.sort(idx)]

    def region_dataset(self, name: str, seed: SeedLike = None, *, n: Optional[int] = None) -> GeoDataset:
        """Sample one region's synthetic dataset.

        Returns a :class:`GeoDataset` with ``metric="gcd"`` and the true
        parameter vector recorded in ``meta["theta_true"]``.
        """
        rng = as_generator(seed)
        region = next(r for r in self.regions() if r.name == name)
        n_pts = n or self.points_per_region
        pts = self._region_locations(region, n_pts, rng)
        model = self.region_model(name)
        values = sample_gaussian_field(pts, model, rng)
        return GeoDataset(
            locations=pts,
            values=values,
            metric="gcd",
            name=f"soil_moisture[{name}]",
            meta={
                "theta_true": model.theta.copy(),
                "region": region,
                "source": "synthetic substitute for Mississippi-basin soil moisture",
            },
        )

    def all_regions(self, seed: SeedLike = None, *, n: Optional[int] = None) -> Dict[str, GeoDataset]:
        """Sample every region with independent RNG streams."""
        names = list(SOIL_MOISTURE_REGION_THETA)
        rngs = spawn_generators(len(names), seed)
        return {name: self.region_dataset(name, rng, n=n) for name, rng in zip(names, rngs)}


def make_soil_moisture_dataset(
    region: str = "R1",
    n: int = 800,
    seed: SeedLike = None,
) -> GeoDataset:
    """Convenience constructor for one region's synthetic dataset.

    Parameters
    ----------
    region:
        One of ``R1``..``R8``.
    n:
        Number of observations.
    seed:
        RNG seed / generator.
    """
    if region not in SOIL_MOISTURE_REGION_THETA:
        raise KeyError(
            f"unknown region {region!r}; expected one of {sorted(SOIL_MOISTURE_REGION_THETA)}"
        )
    return SoilMoistureGenerator(points_per_region=n).region_dataset(region, seed)
