"""Kriging prediction of unknown measurements (paper §III, eqs. (2)-(4)).

With known observations ``Z2`` at ``n`` locations and ``m`` target
locations, the conditional mean under the fitted Gaussian model is

    Z1_hat = Sigma_12 Sigma_22^{-1} Z2                      (eq. 4)

computed — exactly as the paper describes — through the Cholesky factor
of ``Sigma_22`` followed by forward/backward substitutions. The dominant
cost is the factorization (``m`` is small, e.g. 100), which is why the
paper's Figure 5 prediction curves mirror the Figure 4 MLE curves.

The TLR variant factorizes ``Sigma_22`` in TLR form; ``Sigma_12`` stays
dense (it is ``m x n`` with small ``m``).

This module is the one-shot functional facade. Both entry points are
thin wrappers over :class:`~repro.mle.prediction_engine.PredictionEngine`,
which is the right interface for *repeated* prediction against one
fitted model: it caches distance blocks and the ``Sigma_22``
factorization across calls, fuses tile/TLR generation into the
factorization task graph when a runtime is attached, and supports
batched multi-RHS prediction. The wrappers build a fresh engine per
call, so their values match the engine's exactly while keeping the
historical stateless signatures.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..kernels.covariance import CovarianceModel
from ..runtime import Runtime
from .prediction_engine import PredictionEngine

__all__ = ["predict", "conditional_variance"]


def predict(
    locations: np.ndarray,
    z: np.ndarray,
    new_locations: np.ndarray,
    model: CovarianceModel,
    *,
    variant: str = "full-block",
    acc: Optional[float] = None,
    tile_size: Optional[int] = None,
    runtime: Optional[Runtime] = None,
    compression_method: Optional[str] = None,
    cache_distances: Optional[bool] = None,
    parallel_generation: Optional[bool] = None,
) -> np.ndarray:
    """Conditional-mean prediction ``Z1 = Sigma_12 Sigma_22^{-1} Z2``.

    Parameters
    ----------
    locations:
        ``(n, d)`` observed locations.
    z:
        ``(n,)`` observed values (zero-mean), or ``(n, k)`` for batched
        multi-RHS prediction (``k`` realizations against one
        factorization).
    new_locations:
        ``(m, d)`` prediction targets.
    model:
        Fitted covariance model (defines both ``Sigma_22`` and
        ``Sigma_12``).
    variant, acc, tile_size, runtime, compression_method:
        Substrate controls, as in
        :class:`~repro.mle.loglik.LikelihoodEvaluator`.
    cache_distances, parallel_generation:
        Generation-pipeline knobs forwarded to
        :class:`~repro.mle.prediction_engine.PredictionEngine` (``None``
        uses the configured defaults). Values are identical either way;
        for repeated predictions hold a ``PredictionEngine`` instead so
        the caches actually amortize.

    Returns
    -------
    ``(m,)`` predicted values (``(m, k)`` for a batched ``z``).
    """
    engine = PredictionEngine(
        locations,
        z,
        model,
        variant=variant,
        acc=acc,
        tile_size=tile_size,
        runtime=runtime,
        compression_method=compression_method,
        cache_distances=cache_distances,
        parallel_generation=parallel_generation,
    )
    return engine.predict(new_locations)


def conditional_variance(
    locations: np.ndarray,
    new_locations: np.ndarray,
    model: CovarianceModel,
    *,
    variant: str = "full-block",
    acc: Optional[float] = None,
    tile_size: Optional[int] = None,
    runtime: Optional[Runtime] = None,
    compression_method: Optional[str] = None,
    cache_distances: Optional[bool] = None,
    parallel_generation: Optional[bool] = None,
) -> np.ndarray:
    """Diagonal of the conditional covariance (eq. (3)), any substrate.

    ``diag(Sigma_11 - Sigma_12 Sigma_22^{-1} Sigma_21)`` — the pointwise
    kriging variance. Exposed for the examples' uncertainty maps; the
    paper's evaluation uses only the conditional mean. Historically
    dense-only; the ``variant`` argument now selects the full-tile or TLR
    substrate through the shared
    :class:`~repro.mle.prediction_engine.PredictionEngine` machinery
    (TLR variances carry the factor's compression accuracy). The
    factorization is guarded against non-positive-definite covariances
    consistently with
    :func:`~repro.linalg.tile_cholesky.logdet_from_tile_factor` — a
    :class:`~repro.exceptions.NotPositiveDefiniteError` is raised rather
    than NaNs propagated.
    """
    engine = PredictionEngine(
        locations,
        None,
        model,
        variant=variant,
        acc=acc,
        tile_size=tile_size,
        runtime=runtime,
        compression_method=compression_method,
        cache_distances=cache_distances,
        parallel_generation=parallel_generation,
    )
    return engine.conditional_variance(new_locations)
