"""TLR ExaGeoStat reproduction: parallel approximate MLE for geostatistics.

Reproduction of *Parallel Approximation of the Maximum Likelihood
Estimation for the Prediction of Large-Scale Geostatistics Simulations*
(Abdulah et al., IEEE CLUSTER 2018). The package provides:

* :mod:`repro.kernels` — Matérn covariance family, Euclidean/great-circle
  metrics;
* :mod:`repro.data` — synthetic generators, Morton ordering, GP sampling,
  substitutes for the paper's soil-moisture and wind-speed datasets;
* :mod:`repro.runtime` — StarPU-style task runtime (handles, access
  modes, dependency inference, thread-pool execution);
* :mod:`repro.linalg` — dense block / dense tile / TLR linear algebra
  (compression, TLR Cholesky, solves);
* :mod:`repro.optim` — bound-constrained Nelder-Mead (NLopt substitute);
* :mod:`repro.mle` — likelihood evaluators, the MLE driver, kriging
  prediction, Monte-Carlo harness;
* :mod:`repro.serving` — persisted model bundles, a warm-engine
  registry, an async micro-batching prediction service, and a
  multi-process HTTP server/client with hot-reload;
* :mod:`repro.fitting` — durable fit jobs: checkpoint/resume
  Nelder-Mead, process-parallel multistart orchestration, and
  refit-to-hot-reload integration with the serving layer;
* :mod:`repro.resilience` — deterministic fault injection, unified
  retry/deadline policies, and circuit breakers shared by the serving
  and fitting layers;
* :mod:`repro.telemetry` — end-to-end observability: request tracing
  (``X-Repro-Trace``), per-phase spans, a unified metrics registry,
  and Prometheus/JSONL export across serving, fitting, and the runtime;
* :mod:`repro.perfmodel` — machine/cluster models and the performance
  estimator standing in for the paper's Intel servers and Shaheen-2,
  plus host micro-calibration and the self-tuning planner
  (:func:`repro.plan`, ``GET /v1/plan``);
* :mod:`repro.experiments` — drivers regenerating every table and figure.

Quickstart
----------
>>> from repro import MLEstimator, MaternCovariance
>>> from repro.data import generate_irregular_grid, sample_gaussian_field
>>> locs = generate_irregular_grid(400, seed=0)
>>> z = sample_gaussian_field(locs, MaternCovariance(1.0, 0.1, 0.5), seed=1)
>>> fit = MLEstimator(locs, z, variant="tlr", acc=1e-9).fit()
"""

from .version import __version__
from .config import Config, get_config, set_config, use_config
from .kernels import (
    CovarianceModel,
    ExponentialCovariance,
    GaussianCovariance,
    MaternCovariance,
    WhittleCovariance,
)
from .runtime import AccessMode, Runtime
from .linalg import (
    LowRank,
    TileDistanceCache,
    TileMatrix,
    TLRMatrix,
    tile_cholesky,
    tlr_cholesky,
)
from .mle import (
    FitResult,
    LikelihoodEvaluator,
    MLEstimator,
    PredictionEngine,
    exact_loglikelihood,
    mean_squared_error,
    predict,
    run_monte_carlo,
)
from .optim import nelder_mead
from .fitting import FitJobSpec, FitOrchestrator, JobStore
from .resilience import (
    CircuitBreaker,
    Deadline,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    arm,
    disarm,
    fault_point,
)
from .telemetry import (
    MetricsRegistry,
    TraceContext,
    annotate,
    configure_telemetry,
    get_registry,
    span,
)
from .perfmodel.planner import plan
from .serving import (
    ModelBundle,
    ModelRegistry,
    PredictionService,
    ServingClient,
    ServingServer,
    load_model,
    save_model,
)

__all__ = [
    "__version__",
    "Config",
    "get_config",
    "set_config",
    "use_config",
    "CovarianceModel",
    "MaternCovariance",
    "ExponentialCovariance",
    "WhittleCovariance",
    "GaussianCovariance",
    "AccessMode",
    "Runtime",
    "LowRank",
    "TileDistanceCache",
    "TileMatrix",
    "TLRMatrix",
    "tile_cholesky",
    "tlr_cholesky",
    "MLEstimator",
    "FitResult",
    "PredictionEngine",
    "LikelihoodEvaluator",
    "exact_loglikelihood",
    "predict",
    "mean_squared_error",
    "run_monte_carlo",
    "nelder_mead",
    "FitJobSpec",
    "FitOrchestrator",
    "JobStore",
    "CircuitBreaker",
    "Deadline",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "arm",
    "disarm",
    "fault_point",
    "MetricsRegistry",
    "TraceContext",
    "annotate",
    "configure_telemetry",
    "get_registry",
    "span",
    "plan",
    "ModelBundle",
    "ModelRegistry",
    "PredictionService",
    "ServingClient",
    "ServingServer",
    "load_model",
    "save_model",
]
