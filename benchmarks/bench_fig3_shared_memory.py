"""Figure 3 bench — time of one MLE iteration on shared memory.

Two parts:

* paper-scale modeled series for the four Intel machines (a-d panels),
  written as one table per machine;
* measured wall-clock per-iteration times on the host across the same
  variant set (Full-block / Full-tile / TLR at several accuracies),
  with the TLR evaluation itself as the benchmarked kernel.
"""

from __future__ import annotations

import pytest

from repro.data import generate_irregular_grid, sample_gaussian_field, sort_locations
from repro.experiments.common import bench_scale
from repro.experiments.fig3 import PAPER_MACHINES, measured_series, model_series
from repro.kernels import MaternCovariance
from repro.mle import LikelihoodEvaluator


@pytest.mark.parametrize("machine", PAPER_MACHINES)
def test_fig3_model_series(benchmark, outdir, machine):
    """Paper-scale modeled panel for one machine."""
    table = benchmark.pedantic(model_series, args=(machine,), rounds=1, iterations=1)
    table.save(f"fig3_model_{machine}")
    # Figure 3 shape: Full-block slowest, TLR(1e-5) fastest, at max n.
    last = table.rows[-1]
    assert last[1] > last[2] > last[-1]


def test_fig3_measured_host(benchmark, outdir):
    """Measured per-iteration times on the host (written as a table)."""
    table = benchmark.pedantic(measured_series, rounds=1, iterations=1)
    table.save("fig3_measured_host")
    assert len(table.rows) >= 1


@pytest.mark.parametrize("variant,acc", [("full-block", None), ("full-tile", None), ("tlr", 1e-7)])
def test_fig3_single_iteration_kernel(benchmark, variant, acc):
    """pytest-benchmark timing of one likelihood evaluation per variant."""
    n = 1024 if bench_scale() == "quick" else 2500
    model = MaternCovariance(1.0, 0.1, 0.5)
    locs = generate_irregular_grid(n, seed=0)
    locs, _, _ = sort_locations(locs)
    z = sample_gaussian_field(locs, model, seed=1)
    ev = LikelihoodEvaluator(locs, z, model, variant=variant, acc=acc, tile_size=128)
    value = benchmark(ev, model.theta)
    assert value < 0.0  # a log-density of continuous data
