"""Fitting service: durable, parallel, resumable MLE fit jobs.

The paper's expensive half is *fitting* — hundreds of likelihood
evaluations, each a full generate-and-factorize of ``Sigma(theta)``
(§III, Figures 3-4). After the serving PRs, this repo could only run
that loop as a blocking, single-process, lose-everything-on-kill call.
This package packages it as a managed workflow, the way ExaGeoStatR
wraps ExaGeoStat's fitting loop and Hong et al. (2019) motivate routine
re-fitting across approximation levels:

* :mod:`repro.fitting.jobs` — :class:`FitJobSpec` (what to fit: data or
  bundle ref, kernel, substrate, optimizer settings, multistart seed)
  and :class:`JobStore`, the crash-recoverable on-disk ledger with
  per-iteration log-likelihood traces;
* :mod:`repro.fitting.checkpoint` — atomic persistence of the
  optimizer's :class:`~repro.optim.neldermead.SimplexState`, so a
  killed fit resumes bit-identically to an uninterrupted run;
* :mod:`repro.fitting.orchestrator` — :class:`FitOrchestrator`, which
  fans a job's multistart legs out across worker processes (bounded
  concurrency, sequential-parity merge), auto-respawns killed workers
  from their checkpoints, and finalizes each finished fit into a
  :class:`~repro.serving.store.ModelBundle`.

:class:`~repro.serving.server.ServingServer` mounts the orchestrator as
``POST /v1/fit`` + ``GET /v1/jobs/<id>`` and hot-reloads the target
model when a job lands, closing the observe → refit → serve loop with
zero downtime.

Fit as a job, in process:

>>> store = JobStore("fit-jobs")                        # doctest: +SKIP
>>> with FitOrchestrator(store, max_workers=4) as orch: # doctest: +SKIP
...     job_id = orch.submit(FitJobSpec(locations=locs, z=z,
...                                     n_starts=4, seed=7))
...     record = orch.wait(job_id)
...     record["result"]["theta"]

Refit over HTTP (see ``examples/refit_pipeline.py``):

>>> client.fit(model_id="soil", from_model="soil", z=new_obs)  # doctest: +SKIP
>>> client.wait_job("job-000001")                              # doctest: +SKIP
"""

from .checkpoint import Checkpointer, load_state, save_state
from .jobs import FitJobSpec, JobStore, merge_start_results
from .orchestrator import FitOrchestrator

__all__ = [
    "Checkpointer",
    "FitJobSpec",
    "FitOrchestrator",
    "JobStore",
    "load_state",
    "merge_start_results",
    "save_state",
]
