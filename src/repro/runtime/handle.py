"""Registered data handles.

A :class:`DataHandle` is the runtime's view of one piece of user data —
for tile algorithms, one tile (a dense ndarray or a low-rank tile
object). Handles carry the bookkeeping the dependency tracker needs (last
writer, readers since last write) and a monotonically increasing version
for debugging/assertions.

Payloads are held behind an indirection (``get``/``set``) because TLR
codelets *replace* tile contents (a recompression changes the U/V array
shapes); tasks that read the handle later must observe the replacement.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, List, Optional

__all__ = ["DataHandle"]

_handle_counter = itertools.count()


class DataHandle:
    """A piece of data registered with the runtime.

    Parameters
    ----------
    payload:
        Arbitrary object (typically ``np.ndarray`` or a tile container).
    name:
        Optional label for traces and error messages.

    Notes
    -----
    The runtime guarantees exclusive access for W/RW tasks, so codelets
    never need the lock; :meth:`set` exists for codelets that swap the
    payload object itself and is thread-safe against concurrent readers
    of *other* handles (same-handle concurrent access is excluded by the
    dependency rules).
    """

    __slots__ = ("id", "name", "version", "_payload", "_lock", "last_writer", "readers")

    def __init__(self, payload: Any, name: Optional[str] = None) -> None:
        self.id: int = next(_handle_counter)
        self.name = name or f"h{self.id}"
        self.version = 0
        self._payload = payload
        self._lock = threading.Lock()
        # Dependency bookkeeping (owned by the tracker, under runtime lock):
        self.last_writer: Optional[object] = None  # Task
        self.readers: List[object] = []  # Tasks since last write

    def get(self) -> Any:
        """Return the current payload."""
        return self._payload

    def set(self, payload: Any) -> None:
        """Replace the payload (bumps the version)."""
        with self._lock:
            self._payload = payload
            self.version += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataHandle({self.name!r}, v{self.version})"
