"""Breaker transitions and fault firings annotate the active span."""

from __future__ import annotations

import pytest

from repro.exceptions import InjectedFaultError
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import FaultPlan, FaultRule, arm, disarm, fault_point
from repro.telemetry.spans import configure, get_recorder, span


@pytest.fixture(autouse=True)
def _armed_no_faults():
    configure(enabled=True)
    yield
    disarm()


def _by_name(name):
    (rec,) = [r for r in get_recorder().snapshot() if r["name"] == name]
    return rec


def test_breaker_lifecycle_annotates_spans():
    t = [0.0]
    breaker = CircuitBreaker(
        failure_threshold=2, recovery_time=1.0, clock=lambda: t[0]
    )
    with span("req-a"):
        breaker.record_failure()
        breaker.record_failure()  # trips: closed -> open
    t[0] = 2.0
    with span("req-b"):
        assert breaker.allow() is True  # recovery tick: open -> half-open
        breaker.record_success()  # probe succeeds: half-open -> closed
    assert ["breaker", "closed -> open"] in _by_name("req-a")["annotations"]
    anns = _by_name("req-b")["annotations"]
    assert ["breaker", "open -> half-open"] in anns
    assert ["breaker", "half-open -> closed"] in anns


def test_reopen_from_half_open_names_the_source_state():
    t = [0.0]
    breaker = CircuitBreaker(
        failure_threshold=1, recovery_time=1.0, clock=lambda: t[0]
    )
    breaker.record_failure()  # closed -> open (no span: must not raise)
    t[0] = 2.0
    with span("probe"):
        assert breaker.allow() is True
        breaker.record_failure()  # half-open -> open
    anns = _by_name("probe")["annotations"]
    assert ["breaker", "half-open -> open"] in anns


def test_fault_firing_annotates_with_site_hit_action():
    arm(FaultPlan(rules=[
        FaultRule(site="engine.predict", action="raise", after=1, count=1)
    ]))
    with span("guard"):
        fault_point("engine.predict")  # hit 1: passes silently
        with pytest.raises(InjectedFaultError):
            fault_point("engine.predict")  # hit 2: fires and annotates
    anns = _by_name("guard")["annotations"]
    assert ["fault", "engine.predict#2:raise"] in anns
    assert ["fault", "engine.predict#1:raise"] not in anns


def test_annotations_are_noops_without_telemetry():
    from repro.telemetry.spans import reset_telemetry

    reset_telemetry()
    breaker = CircuitBreaker(failure_threshold=1, recovery_time=1.0)
    breaker.record_failure()  # must not raise with telemetry unresolved
    arm(FaultPlan(rules=[FaultRule(site="engine.predict", action="delay", delay=0.001)]))
    fault_point("engine.predict")
    assert get_recorder() is None
