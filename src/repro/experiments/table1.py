"""Table I — Matérn estimates for the 8 soil-moisture regions.

For each region R1..R8, a synthetic field with the paper's full-tile
estimates as ground truth (DESIGN.md §4 substitution) is re-estimated
with TLR at several accuracies and with the full-tile reference. The
reproducible content is the *agreement pattern*: TLR estimates converge
to the full-tile estimates as the accuracy tightens, with the
strongly-correlated regions (R7, R8 — ranges 19-28 degrees) demanding
tighter thresholds, and the smoothness parameter being the most robust.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..data.soil_moisture import SOIL_MOISTURE_REGION_THETA, SoilMoistureGenerator
from ..kernels.covariance import MaternCovariance
from ..mle.estimator import MLEstimator
from ..optim.bounds import default_matern_bounds
from .common import ResultTable, bench_scale

__all__ = ["run_table1", "PAPER_TABLE1_FULLTILE"]

#: The paper's Table I full-tile reference values (ground truth here).
PAPER_TABLE1_FULLTILE = SOIL_MOISTURE_REGION_THETA

PARAM_NAMES = ("variance", "range", "smoothness")


def _fit_region(
    dataset,
    variant: str,
    acc: Optional[float],
    tile_size: int,
    maxiter: int,
) -> np.ndarray:
    est = MLEstimator.from_dataset(dataset, variant=variant, acc=acc, tile_size=tile_size)
    bounds = default_matern_bounds(dataset.values, max_range=60.0)
    # Start from the generating parameters (the paper starts from
    # empirical values; our synthetic substitute makes them available
    # exactly, which keeps the weakly identified strong-correlation
    # regions from wandering between equivalent local optima).
    x0 = np.asarray(dataset.meta["theta_true"], dtype=float)
    fit = est.fit(maxiter=maxiter, bounds=bounds, x0=x0)
    return fit.theta


def run_table1(
    *,
    regions: Optional[Sequence[str]] = None,
    accuracies: Sequence[float] = (1e-5, 1e-7, 1e-9),
    n: Optional[int] = None,
    tile_size: Optional[int] = None,
    maxiter: Optional[int] = None,
    seed: int = 11,
) -> Dict[str, ResultTable]:
    """Reproduce Table I: one table per Matérn parameter.

    Returns ``{"variance": ..., "range": ..., "smoothness": ...}`` with
    one row per region and one column per technique (TLR accuracies then
    Full-tile), plus the generating truth.
    """
    quick = bench_scale() == "quick"
    if regions is None:
        regions = ("R1", "R4", "R7", "R8") if quick else tuple(SOIL_MOISTURE_REGION_THETA)
    n = (300 if quick else 800) if n is None else n
    tile_size = (75 if quick else 150) if tile_size is None else tile_size
    maxiter = (50 if quick else 120) if maxiter is None else maxiter

    gen = SoilMoistureGenerator(points_per_region=n)
    techniques: list[Tuple[str, Optional[float]]] = [("tlr", a) for a in accuracies]
    techniques.append(("full-tile", None))
    tech_names = [f"TLR {a:.0e}" for a in accuracies] + ["Full-tile"]

    estimates: Dict[str, Dict[str, np.ndarray]] = {}
    for idx, region in enumerate(regions):
        ds = gen.region_dataset(region, seed=seed + idx)
        estimates[region] = {}
        for (variant, acc), tname in zip(techniques, tech_names):
            estimates[region][tname] = _fit_region(ds, variant, acc, tile_size, maxiter)

    tables: Dict[str, ResultTable] = {}
    for p, pname in enumerate(PARAM_NAMES):
        table = ResultTable(
            title=f"Table I — soil moisture, estimated Matérn {pname} per region",
            headers=["region", "truth (paper full-tile)"] + tech_names,
        )
        for region in regions:
            truth = SOIL_MOISTURE_REGION_THETA[region][p]
            row: list[object] = [region, truth]
            for tname in tech_names:
                row.append(float(estimates[region][tname][p]))
            table.add_row(*row)
        table.add_note(
            f"synthetic substitute fields (n={n}/region) generated from the paper's "
            "full-tile estimates; see DESIGN.md §4"
        )
        tables[pname] = table
    return tables
