"""Tests for the full-block reference and dense tile Cholesky/solves."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import NotPositiveDefiniteError, ShapeError
from repro.linalg.blocklapack import (
    block_cholesky,
    block_cholesky_solve,
    block_logdet_from_factor,
)
from repro.linalg.tile_cholesky import logdet_from_tile_factor, tile_cholesky
from repro.linalg.tile_matrix import TileMatrix
from repro.linalg.tile_solve import tile_cholesky_solve, tile_solve_triangular
from repro.runtime import Runtime


@pytest.fixture(scope="module")
def spd(small_sigma_module):
    return small_sigma_module


@pytest.fixture(scope="module")
def small_sigma_module():
    from repro.data import generate_irregular_grid, sort_locations
    from repro.kernels import MaternCovariance

    locs = generate_irregular_grid(144, seed=9)
    locs, _, _ = sort_locations(locs)
    return MaternCovariance(1.0, 0.1, 0.5).matrix(locs)


class TestBlockLapack:
    def test_cholesky_matches_numpy(self, spd):
        L = block_cholesky(spd.copy())
        np.testing.assert_allclose(L, np.linalg.cholesky(spd), atol=1e-10)
        assert np.allclose(L, np.tril(L))

    def test_logdet(self, spd):
        L = block_cholesky(spd.copy())
        sign, ref = np.linalg.slogdet(spd)
        assert sign == 1.0
        assert block_logdet_from_factor(L) == pytest.approx(ref, rel=1e-10)

    def test_solve_and_half_solve(self, spd, rng):
        b = rng.random(spd.shape[0])
        L = block_cholesky(spd.copy())
        x = block_cholesky_solve(L, b)
        np.testing.assert_allclose(spd @ x, b, atol=1e-8)
        x2, y = block_cholesky_solve(L, b, return_half_solve=True)
        np.testing.assert_allclose(x2, x, atol=1e-12)
        assert y @ y == pytest.approx(b @ np.linalg.solve(spd, b), rel=1e-8)

    def test_not_positive_definite(self):
        bad = np.array([[1.0, 2.0], [2.0, 1.0]])
        with pytest.raises(NotPositiveDefiniteError):
            block_cholesky(bad)

    def test_logdet_rejects_bad_factor(self):
        with pytest.raises(NotPositiveDefiniteError):
            block_logdet_from_factor(np.diag([1.0, -1.0]))

    def test_non_square_rejected(self, rng):
        with pytest.raises(ShapeError):
            block_cholesky(rng.random((3, 4)))


class TestTileCholesky:
    @pytest.mark.parametrize("nb", [16, 33, 144, 50])
    def test_serial_matches_reference(self, spd, nb):
        tm = TileMatrix.from_dense(spd, nb, symmetric_lower=True)
        tile_cholesky(tm)
        ref = np.linalg.cholesky(spd)
        got = np.tril(tm.to_dense())  # factor lives in the lower triangle
        np.testing.assert_allclose(got, ref, atol=1e-9)

    def test_parallel_matches_serial_exactly(self, spd):
        tm_serial = TileMatrix.from_dense(spd, 32, symmetric_lower=True)
        tile_cholesky(tm_serial)
        tm_par = TileMatrix.from_dense(spd, 32, symmetric_lower=True)
        with Runtime(num_workers=6) as rt:
            tile_cholesky(tm_par, runtime=rt)
        for (i, j, a), (_, _, b) in zip(tm_serial.iter_stored(), tm_par.iter_stored()):
            np.testing.assert_array_equal(a, b)

    def test_requires_symmetric_lower(self, spd):
        tm = TileMatrix.from_dense(spd, 32, symmetric_lower=False)
        with pytest.raises(ShapeError):
            tile_cholesky(tm)

    def test_logdet(self, spd):
        tm = TileMatrix.from_dense(spd, 40, symmetric_lower=True)
        tile_cholesky(tm)
        _, ref = np.linalg.slogdet(spd)
        assert logdet_from_tile_factor(tm) == pytest.approx(ref, rel=1e-10)

    def test_not_positive_definite_raises(self):
        bad = -np.eye(20)
        tm = TileMatrix.from_dense(bad, 8, symmetric_lower=True)
        with pytest.raises(NotPositiveDefiniteError):
            tile_cholesky(tm)

    def test_parallel_error_propagates(self):
        bad = -np.eye(24)
        tm = TileMatrix.from_dense(bad, 8, symmetric_lower=True)
        with Runtime(num_workers=4) as rt:
            with pytest.raises(NotPositiveDefiniteError):
                tile_cholesky(tm, runtime=rt)


class TestTileSolve:
    @pytest.mark.parametrize("nb", [16, 37])
    def test_solve_vector(self, spd, nb, rng):
        b = rng.random(spd.shape[0])
        tm = TileMatrix.from_dense(spd, nb, symmetric_lower=True)
        tile_cholesky(tm)
        x = tile_cholesky_solve(tm, b)
        np.testing.assert_allclose(spd @ x, b, atol=1e-8)

    def test_solve_multi_rhs(self, spd, rng):
        b = rng.random((spd.shape[0], 5))
        tm = TileMatrix.from_dense(spd, 32, symmetric_lower=True)
        tile_cholesky(tm)
        x = tile_cholesky_solve(tm, b)
        np.testing.assert_allclose(spd @ x, b, atol=1e-8)

    def test_triangular_halves(self, spd, rng):
        b = rng.random(spd.shape[0])
        tm = TileMatrix.from_dense(spd, 48, symmetric_lower=True)
        tile_cholesky(tm)
        ref = np.linalg.cholesky(spd)
        y = tile_solve_triangular(tm, b, trans=False)
        np.testing.assert_allclose(ref @ y, b, atol=1e-8)
        z = tile_solve_triangular(tm, y, trans=True)
        np.testing.assert_allclose(ref.T @ z, y, atol=1e-8)

    def test_rhs_not_mutated(self, spd, rng):
        b = rng.random(spd.shape[0])
        b0 = b.copy()
        tm = TileMatrix.from_dense(spd, 32, symmetric_lower=True)
        tile_cholesky(tm)
        tile_cholesky_solve(tm, b)
        np.testing.assert_array_equal(b, b0)

    def test_wrong_length(self, spd, rng):
        tm = TileMatrix.from_dense(spd, 32, symmetric_lower=True)
        tile_cholesky(tm)
        with pytest.raises(ShapeError):
            tile_solve_triangular(tm, rng.random(5))
