"""ModelRegistry: lazy loading, LRU eviction + rehydration, sharding,
thread safety, and runtime lifecycle."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.data import generate_irregular_grid, sample_gaussian_field
from repro.exceptions import ModelNotFoundError
from repro.kernels import MaternCovariance
from repro.serving import ModelBundle, ModelRegistry

N = 100


@pytest.fixture(scope="module")
def bundles(tmp_path_factory):
    """Two persisted models with different parameters, plus targets."""
    root = tmp_path_factory.mktemp("bundles")
    locs = generate_irregular_grid(N, seed=0)
    paths, references = {}, {}
    targets = generate_irregular_grid(10, seed=9)
    for name, theta in (("a", (1.0, 0.1, 0.5)), ("b", (2.0, 0.25, 1.0))):
        model = MaternCovariance(*theta)
        z = sample_gaussian_field(locs, model, seed=4)
        bundle = ModelBundle(model=model, locations=locs, z=z, variant="full-block")
        paths[name] = bundle.save(root / f"{name}.bundle")
        references[name] = bundle.build_engine().predict(targets)
    return paths, references, targets


def test_lazy_load_and_warm_hits(bundles):
    paths, references, targets = bundles
    with ModelRegistry(max_models=4) as reg:
        reg.register("a", paths["a"]).register("b", paths["b"])
        assert reg.loaded_models == []  # nothing read yet
        np.testing.assert_array_equal(reg.engine("a").predict(targets), references["a"])
        np.testing.assert_array_equal(reg.engine("b").predict(targets), references["b"])
        assert reg.n_loads == 2
        first = reg.engine("a")
        assert reg.engine("a") is first  # warm hit, same engine object
        assert reg.n_loads == 2 and reg.n_hits >= 2


def test_lru_eviction_and_rehydration(bundles):
    paths, references, targets = bundles
    with ModelRegistry(max_models=1) as reg:
        reg.register("a", paths["a"]).register("b", paths["b"])
        engine_a = reg.engine("a")
        assert reg.loaded_models == ["a"]
        reg.engine("b")  # evicts a (LRU, max_models=1)
        assert reg.loaded_models == ["b"]
        assert reg.n_evictions == 1
        rehydrated = reg.engine("a")  # transparently reloaded from disk
        assert rehydrated is not engine_a
        assert reg.n_loads == 3
        np.testing.assert_array_equal(rehydrated.predict(targets), references["a"])


def test_recency_order_protects_hot_models(bundles):
    paths, _, targets = bundles
    with ModelRegistry(max_models=2) as reg:
        reg.register("a", paths["a"]).register("b", paths["b"])
        reg.add_bundle("c", ModelBundle.load(paths["a"]))
        reg.engine("a")
        reg.engine("b")
        reg.engine("a")  # refresh a: now b is least recently used
        reg.engine("c")
        assert reg.loaded_models == ["a", "c"]


def test_unknown_and_evicted_engine_only_models(bundles):
    paths, references, targets = bundles
    with ModelRegistry(max_models=1) as reg:
        with pytest.raises(ModelNotFoundError):
            reg.engine("nope")
        engine = ModelBundle.load(paths["a"]).build_engine()
        reg.add_engine("ephemeral", engine)
        assert reg.engine("ephemeral") is engine
        reg.evict("ephemeral")
        with pytest.raises(ModelNotFoundError):  # nothing to rehydrate from
            reg.engine("ephemeral")


def test_concurrent_access_loads_each_model_once(bundles):
    paths, references, targets = bundles
    with ModelRegistry(max_models=4) as reg:
        reg.register("a", paths["a"]).register("b", paths["b"])
        outputs: dict = {}
        errors: list = []

        def hammer(idx: int):
            try:
                name = "a" if idx % 2 == 0 else "b"
                outputs[idx] = (name, reg.engine(name).predict(targets))
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(12)]
        for th in threads:
            th.start()
        for th in threads:
            th.join(timeout=30.0)
        assert not errors and len(outputs) == 12
        assert reg.n_loads == 2  # the lock serializes loading: once per model
        for name, got in outputs.values():
            np.testing.assert_array_equal(got, references[name])


def test_sharding_stable_and_runtimes_recycled(bundles):
    paths, references, targets = bundles
    reg = ModelRegistry(max_models=4, num_shards=2, workers_per_shard=2)
    try:
        reg.register("a", paths["a"]).register("b", paths["b"])
        shard_a, shard_b = reg.shard_of("a"), reg.shard_of("b")
        assert shard_a == reg.shard_of("a")  # deterministic
        assert {shard_a, shard_b} <= {0, 1}
        engine = reg.engine("a")
        assert engine.runtime is not None
        np.testing.assert_array_equal(engine.predict(targets), references["a"])
        runtimes = list(reg._runtimes.values())
        assert runtimes
    finally:
        reg.close()
    assert all(rt.closed for rt in runtimes)
    reg.close()  # idempotent
    with pytest.raises(ModelNotFoundError):
        reg.engine("a")


def test_stats_surface(bundles):
    paths, _, targets = bundles
    with ModelRegistry(max_models=2, num_shards=3) as reg:
        reg.register("a", paths["a"]).register("b", paths["b"])
        reg.engine("a")
        stats = reg.stats()
        assert stats["n_loads"] == 1
        assert stats["loaded"] == ["a"]
        assert set(stats["known"]) == {"a", "b"}
        assert set(stats["shards"]) == {"a", "b"}
        assert all(0 <= s < 3 for s in stats["shards"].values())
