"""Morton (Z-order) space-filling-curve ordering of locations.

ExaGeoStat sorts spatial locations along a Morton curve before assembling
the covariance matrix. The ordering is what makes the *tile* structure
meaningful for TLR: after sorting, points within a tile are spatially
clustered and the distance between tile index blocks correlates with
spatial separation, so off-diagonal tiles are numerically low-rank. The
ablation bench ``bench_ablation_ordering`` quantifies how much compression
is lost without it.
"""

from __future__ import annotations

import numpy as np

from ..utils.validation import check_locations

__all__ = ["morton_keys", "morton_order", "sort_locations"]

#: Number of bits per coordinate used for quantization (32-bit keys for
#: 2 dims fit comfortably in int64).
DEFAULT_BITS = 16


def _part1by1(x: np.ndarray) -> np.ndarray:
    """Interleave zeros between the low 16 bits of each element ("part 1 by 1").

    Standard magic-number bit spreading: maps bit i of the input to bit 2i
    of the output, vectorized over an int64 array.
    """
    x = x.astype(np.int64)
    x &= 0x0000FFFF
    x = (x | (x << 8)) & 0x00FF00FF
    x = (x | (x << 4)) & 0x0F0F0F0F
    x = (x | (x << 2)) & 0x33333333
    x = (x | (x << 1)) & 0x55555555
    return x


def morton_keys(points: np.ndarray, *, bits: int = DEFAULT_BITS) -> np.ndarray:
    """Morton keys of 2-D (or 1-D/3-D) points after min-max quantization.

    Parameters
    ----------
    points:
        ``(n, d)`` locations; coordinates are affinely mapped to the
        ``[0, 2^bits)`` integer lattice per dimension.
    bits:
        Quantization bits per coordinate, at most 16 for the vectorized
        2-D spread (1-D uses the raw quantized value; 3-D falls back to a
        per-bit loop, still vectorized over points).

    Returns
    -------
    ``(n,)`` int64 array of Z-order keys.
    """
    pts = check_locations(points, "points")
    n, d = pts.shape
    if not (1 <= bits <= 16):
        raise ValueError(f"bits must lie in [1, 16], got {bits}")
    scale = (1 << bits) - 1
    mins = pts.min(axis=0)
    spans = pts.max(axis=0) - mins
    spans[spans == 0.0] = 1.0
    q = ((pts - mins) / spans * scale).astype(np.int64)
    np.clip(q, 0, scale, out=q)
    if d == 1:
        return q[:, 0]
    if d == 2:
        return _part1by1(q[:, 0]) | (_part1by1(q[:, 1]) << 1)
    # d == 3: interleave bit by bit (loop over bits, vector over points).
    keys = np.zeros(n, dtype=np.int64)
    for b in range(bits):
        for dim in range(3):
            keys |= ((q[:, dim] >> b) & 1) << (3 * b + dim)
    return keys


def morton_order(points: np.ndarray, *, bits: int = DEFAULT_BITS) -> np.ndarray:
    """Return the permutation that sorts ``points`` along the Morton curve.

    Ties (identical quantized cells) are broken by original index, making
    the permutation deterministic.
    """
    keys = morton_keys(points, bits=bits)
    return np.argsort(keys, kind="stable")


def sort_locations(
    points: np.ndarray,
    values: np.ndarray | None = None,
    *,
    bits: int = DEFAULT_BITS,
):
    """Sort locations (and optional aligned values) in Morton order.

    Returns
    -------
    ``(sorted_points, sorted_values, permutation)`` — ``sorted_values`` is
    ``None`` when ``values`` is ``None``. The permutation lets callers map
    results back to the original ordering.
    """
    perm = morton_order(points, bits=bits)
    pts = check_locations(points, "points")[perm]
    vals = None if values is None else np.asarray(values)[perm]
    return pts, vals, perm
