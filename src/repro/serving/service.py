"""Async micro-batching prediction service over the model registry.

The kriging engine is optimized for *batched* work: one cached
``Sigma_22`` factor serves any number of target rows, and
:meth:`~repro.mle.prediction_engine.PredictionEngine.predict_many`
turns many target sets into one stacked cross-covariance pass. A
serving front-end therefore wants the opposite of request-at-a-time
dispatch: concurrent requests for the same model should *coalesce*.

:class:`PredictionService` implements that with a per-model
micro-batcher:

* ``await predict(model_id, targets)`` enqueues a request on the
  model's bounded queue (**backpressure**: a full queue rejects with
  :class:`~repro.exceptions.ServiceOverloadedError` instead of growing
  without bound) and awaits its future.
* The model's batcher task takes the first queued request, keeps
  collecting for ``batch_window`` seconds (up to ``max_batch``), drops
  requests whose **deadline** expired, and dispatches the survivors as
  the fewest engine calls the grouping rules allow:

  - requests using the model's bound observations are served by one
    ``predict_many`` call — **bit-identical** to sequential single
    predicts (per-set cross-distances, one stacked elementwise
    covariance application, and a per-request slice GEMV with exactly
    the shape a standalone call would use);
  - requests carrying their own 1-D ``z`` over identical targets are
    served as one multi-RHS solve (``z`` columns stacked; equal to
    sequential solves to solver rounding, ~1e-15 relative);
  - everything else falls back to single calls.

* Engine calls run on a thread pool via ``run_in_executor``, so the
  event loop keeps accepting requests while BLAS works (NumPy releases
  the GIL in the heavy kernels).

The service is asyncio-native (``async with PredictionService(...)``)
and owns nothing global: registry, metrics and executor are injectable.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import get_config
from ..linalg.generation import array_content_key
from ..exceptions import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    ModelNotFoundError,
    ServiceClosedError,
    ServiceOverloadedError,
    ShapeError,
)
from ..resilience.breaker import BreakerPool
from ..resilience.faults import fault_point
from ..telemetry import context as _trace_context
from ..telemetry import spans as _telemetry
from ..utils.validation import check_locations
from .metrics import ServiceMetrics
from .registry import ModelRegistry

#: Failures caused by the *request* (bad shapes, expired deadlines,
#: unknown models) — they pass through to their owner without counting
#: against the model's circuit breaker, which tracks only
#: infrastructure health.
_USER_ERRORS = (
    DeadlineExceededError,
    ModelNotFoundError,
    ShapeError,
    ConfigurationError,
    ValueError,
    TypeError,
)

__all__ = ["BatchPolicy", "PredictionService"]


class _Request:
    """One queued predict: payload, bookkeeping, and the answer future."""

    __slots__ = (
        "targets",
        "z",
        "future",
        "t_submit",
        "deadline",
        "priority",
        "trace_ctx",
    )

    def __init__(
        self,
        targets: np.ndarray,
        z: Optional[np.ndarray],
        future: "asyncio.Future[np.ndarray]",
        t_submit: float,
        deadline: Optional[float],
        priority: int = 0,
        trace_ctx: Optional[_trace_context.TraceContext] = None,
    ) -> None:
        self.targets = targets
        self.z = z
        self.future = future
        self.t_submit = t_submit  # monotonic seconds
        self.deadline = deadline  # absolute monotonic seconds, or None
        self.priority = priority  # > 0: urgent lane, never waits the window
        # run_in_executor does NOT propagate contextvars, so the trace
        # context is captured here and re-activated on the executor
        # thread — the one hand-off the contextvar cannot make itself.
        self.trace_ctx = trace_ctx


class BatchPolicy:
    """Per-model batching knobs overriding the service-wide defaults.

    ``None`` fields fall through to the service default (or, for the
    window, to the learned adaptive value when that is enabled).
    """

    __slots__ = ("batch_window", "max_batch")

    def __init__(
        self,
        batch_window: Optional[float] = None,
        max_batch: Optional[int] = None,
    ) -> None:
        if batch_window is not None and float(batch_window) < 0:
            raise ConfigurationError(
                f"batch_window must be >= 0, got {batch_window}"
            )
        if max_batch is not None and int(max_batch) < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        self.batch_window = None if batch_window is None else float(batch_window)
        self.max_batch = None if max_batch is None else int(max_batch)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BatchPolicy(batch_window={self.batch_window}, max_batch={self.max_batch})"


class PredictionService:
    """Asyncio micro-batching front-end over a :class:`ModelRegistry`.

    Parameters
    ----------
    registry:
        Source of warm engines (not owned: :meth:`stop` does not close it).
    batch_window:
        Seconds to keep coalescing after the first queued request
        (default: configured ``serving_batch_window``). ``0`` dispatches
        immediately — the "unbatched" baseline of the benchmarks.
    max_batch:
        Cap on requests per dispatch round (default: configured
        ``serving_max_batch``).
    max_queue:
        Per-model queue bound; beyond it submissions are rejected with
        :class:`ServiceOverloadedError` (default: configured
        ``serving_queue_size``).
    default_deadline:
        Default per-request deadline in seconds from submission
        (``None``: no deadline). A request whose deadline passes before
        dispatch fails with :class:`DeadlineExceededError`.
    rhs_batching:
        Coalesce same-target explicit-``z`` requests into one multi-RHS
        solve (equal to sequential solves to solver rounding). Disable
        for strict bitwise reproducibility of explicit-``z`` traffic.
    adaptive_window:
        Learn each model's coalescing window from its recent arrival
        rate (default: configured ``serving_adaptive_window``): the
        window approximates the time ``max_batch`` requests take to
        arrive at the observed rate, capped at ``max_window``. Models
        with no recent traffic use ``batch_window``. An explicit
        per-model :class:`BatchPolicy` window always wins.
    max_window:
        Cap on the learned adaptive window (default: configured
        ``serving_max_window``). Explicit windows — the service default
        and per-model policies — are honored verbatim.
    breaker_threshold:
        Consecutive infrastructure failures that open a model's circuit
        breaker (default: configured ``breaker_threshold``). While open,
        the model serves from its last-known-good engine generation with
        ``degraded: true`` — or fails fast with
        :class:`~repro.exceptions.CircuitOpenError` when none exists.
    breaker_recovery:
        Seconds an open breaker waits before admitting probe traffic
        (default: configured ``breaker_recovery``).
    metrics:
        A :class:`ServiceMetrics` to record into (default: fresh).
    executor:
        Thread pool for engine calls (default: one owned worker per
        registry shard, minimum 2).

    Examples
    --------
    >>> async def main():                                  # doctest: +SKIP
    ...     async with PredictionService(registry) as svc:
    ...         return await svc.predict("soil", targets)
    """

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        batch_window: Optional[float] = None,
        max_batch: Optional[int] = None,
        max_queue: Optional[int] = None,
        default_deadline: Optional[float] = None,
        rhs_batching: bool = True,
        adaptive_window: Optional[bool] = None,
        max_window: Optional[float] = None,
        breaker_threshold: Optional[int] = None,
        breaker_recovery: Optional[float] = None,
        metrics: Optional[ServiceMetrics] = None,
        executor: Optional[concurrent.futures.Executor] = None,
    ) -> None:
        cfg = get_config()
        # Nonsense knobs fail here, at construction — not by silent
        # clamping, and not as a confusing error on the first request.
        if batch_window is not None and float(batch_window) < 0:
            raise ConfigurationError(f"batch_window must be >= 0, got {batch_window}")
        if max_batch is not None and int(max_batch) < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        if max_queue is not None and int(max_queue) < 1:
            raise ConfigurationError(f"max_queue must be >= 1, got {max_queue}")
        if default_deadline is not None and float(default_deadline) <= 0:
            raise ConfigurationError(
                f"default_deadline must be > 0 seconds, got {default_deadline}"
            )
        if max_window is not None and float(max_window) < 0:
            raise ConfigurationError(f"max_window must be >= 0, got {max_window}")
        self.registry = registry
        self.batch_window = (
            cfg.serving_batch_window if batch_window is None else float(batch_window)
        )
        self.max_batch = cfg.serving_max_batch if max_batch is None else int(max_batch)
        self.max_queue = cfg.serving_queue_size if max_queue is None else int(max_queue)
        self.default_deadline = default_deadline
        self.rhs_batching = bool(rhs_batching)
        self.adaptive_window = (
            cfg.serving_adaptive_window if adaptive_window is None else bool(adaptive_window)
        )
        self.max_window = (
            cfg.serving_max_window if max_window is None else float(max_window)
        )
        self.metrics = metrics or ServiceMetrics()
        # Breaker knobs resolve against *this thread's* config now:
        # breakers are created lazily on executor threads whose
        # thread-local config is the default.
        self._breakers = BreakerPool(
            failure_threshold=(
                cfg.breaker_threshold if breaker_threshold is None else int(breaker_threshold)
            ),
            recovery_time=(
                cfg.breaker_recovery if breaker_recovery is None else float(breaker_recovery)
            ),
        )
        self._policies: Dict[str, BatchPolicy] = {}
        self._executor = executor
        self._owns_executor = executor is None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queues: Dict[str, "asyncio.Queue[_Request]"] = {}
        self._batchers: Dict[str, "asyncio.Task[None]"] = {}
        self._closed = True

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> "PredictionService":
        """Bind to the running event loop and start accepting requests."""
        if self._loop is not None and not self._closed:
            return self
        self._loop = asyncio.get_running_loop()
        if self._owns_executor:
            self._executor = concurrent.futures.ThreadPoolExecutor(
                max_workers=max(2, self.registry.num_shards),
                thread_name_prefix="repro-serving",
            )
        self._closed = False
        return self

    async def stop(self) -> None:
        """Stop batchers, fail queued requests, release the executor.

        Idempotent. Queued and in-flight requests fail with
        :class:`ServiceClosedError`; an engine call already running on
        the executor finishes on its own thread (the executor shutdown
        waits for it) but its requests are already answered with the
        error.
        """
        if self._closed:
            return
        self._closed = True
        batchers = list(self._batchers.values())
        self._batchers.clear()
        for task in batchers:
            task.cancel()
        await asyncio.gather(*batchers, return_exceptions=True)
        for queue in self._queues.values():
            while True:
                try:
                    req = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                self._fail(req, ServiceClosedError("service stopped"))
        self._queues.clear()
        if self._owns_executor and self._executor is not None:
            executor, self._executor = self._executor, None
            # Off-loop: shutdown(wait=True) blocks until in-flight engine
            # calls finish, and must not freeze the event loop meanwhile.
            await asyncio.get_running_loop().run_in_executor(None, executor.shutdown)

    async def __aenter__(self) -> "PredictionService":
        return await self.start()

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    # -------------------------------------------------------------- predict
    async def predict(
        self,
        model_id: str,
        targets: np.ndarray,
        *,
        z: Optional[np.ndarray] = None,
        deadline: Optional[float] = None,
        priority: int = 0,
        detail: bool = False,
    ) -> np.ndarray:
        """Conditional mean at ``targets`` under model ``model_id``.

        Parameters
        ----------
        model_id:
            A model known to the registry.
        targets:
            ``(m, d)`` prediction locations.
        z:
            Optional observation override (else the model's bound
            observations — the coalescing-friendly path).
        deadline:
            Seconds from now this request stays valid (default:
            ``default_deadline``); expired requests fail with
            :class:`DeadlineExceededError` instead of occupying an
            engine. Non-positive values are already expired.
        priority:
            ``> 0`` puts the request on the urgent lane: the round it
            joins stops waiting out the coalescing window (it still
            coalesces with whatever is already queued), and its group
            dispatches before lower-priority groups of the same round.
        detail:
            When true, return ``(prediction, flags)`` where ``flags``
            carries ``{"degraded": bool}`` — true when the answer came
            from a last-known-good engine generation rather than the
            model's current primary.

        Raises
        ------
        ServiceOverloadedError
            The model's queue is full (backpressure).
        ServiceClosedError
            The service is not running.
        ModelNotFoundError
            ``model_id`` is unknown to the registry (checked up front,
            so bogus ids cannot accumulate queues or batcher tasks).
        """
        if self._closed or self._loop is None:
            raise ServiceClosedError("service is not running (use 'async with' or start())")
        if not self.registry.has(model_id):
            raise ModelNotFoundError(f"model {model_id!r} is not registered")
        targets = check_locations(
            np.ascontiguousarray(np.asarray(targets, dtype=np.float64)), "targets"
        )
        if z is not None:
            z = np.asarray(z, dtype=np.float64)
        with _telemetry.span("service.predict", model=model_id):
            now = time.monotonic()
            limit = self.default_deadline if deadline is None else deadline
            req = _Request(
                targets,
                z,
                self._loop.create_future(),
                now,
                None if limit is None else now + float(limit),
                int(priority),
                trace_ctx=_trace_context.current() if _telemetry.enabled() else None,
            )
            self.metrics.record_arrival(model_id, now)
            queue = self._queue_for(model_id)
            try:
                queue.put_nowait(req)
            except asyncio.QueueFull:
                self.metrics.inc("rejected_overload")
                raise ServiceOverloadedError(
                    f"model {model_id!r} has {self.max_queue} queued requests"
                ) from None
            self.metrics.inc("requests")
            value, flags = await req.future
        if detail:
            return value, flags
        return value

    # --------------------------------------------------------------- policy
    def set_policy(
        self,
        model_id: str,
        *,
        batch_window: Optional[float] = None,
        max_batch: Optional[int] = None,
    ) -> "PredictionService":
        """Install per-model batching knobs (validated immediately).

        Omitted knobs keep their previously set per-model value (calls
        *merge*, so two admin calls tuning one knob each compose), and
        overrides take effect on the model's next dispatch round —
        batchers re-resolve their policy every round. Use
        :meth:`clear_policy` to drop a model back to the defaults.
        """
        previous = self._policies.get(model_id)
        if previous is not None:
            if batch_window is None:
                batch_window = previous.batch_window
            if max_batch is None:
                max_batch = previous.max_batch
        self._policies[model_id] = BatchPolicy(batch_window, max_batch)
        return self

    def clear_policy(self, model_id: str) -> None:
        """Remove ``model_id``'s per-model policy (back to defaults)."""
        self._policies.pop(model_id, None)

    def effective_policy(self, model_id: str) -> Tuple[float, int]:
        """The ``(batch_window, max_batch)`` the next round will use.

        Resolution order for the window: explicit per-model policy,
        then the learned arrival-rate window (when ``adaptive_window``),
        then the service default. ``max_batch`` is per-model or default.
        """
        policy = self._policies.get(model_id)
        max_batch = self.max_batch
        if policy is not None and policy.max_batch is not None:
            max_batch = policy.max_batch
        if policy is not None and policy.batch_window is not None:
            # Explicit operator choices are honored verbatim, exactly
            # like the service-wide default; max_window caps only the
            # *learned* window.
            return policy.batch_window, max_batch
        if self.adaptive_window:
            return self._learned_window(model_id, max_batch), max_batch
        return self.batch_window, max_batch

    def _learned_window(self, model_id: str, max_batch: int) -> float:
        """Window sized to the time ``max_batch`` arrivals take at the
        model's recent rate: hot models close their batches about when
        they fill; quiet models (no rate estimate) fall back to the
        default window exactly as documented — the same value the
        non-adaptive path would use, uncapped."""
        rate = self.metrics.arrival_rate(model_id)
        if rate is None or rate <= 0.0:
            return self.batch_window
        return min(self.max_window, (max_batch - 1) / rate)

    # ------------------------------------------------------------- batching
    def _queue_for(self, model_id: str) -> "asyncio.Queue[_Request]":
        queue = self._queues.get(model_id)
        if queue is None:
            queue = asyncio.Queue(maxsize=self.max_queue)
            self._queues[model_id] = queue
            assert self._loop is not None
            self._batchers[model_id] = self._loop.create_task(
                self._batch_loop(model_id, queue), name=f"repro-batcher-{model_id}"
            )
        return queue

    async def _batch_loop(self, model_id: str, queue: "asyncio.Queue[_Request]") -> None:
        """Collect → expire → group → dispatch, forever (cancelled by stop)."""
        assert self._loop is not None
        batch: List[_Request] = []
        try:
            while True:
                batch = [await queue.get()]
                t_open = self._loop.time()
                window, max_batch = self.effective_policy(model_id)
                window_open = window > 0.0 and max_batch > 1
                t_close = t_open + window
                while len(batch) < max_batch:
                    # Drain the backlog synchronously first: under
                    # sustained load the batch fills from already-queued
                    # requests without paying a timer/task per item, and
                    # the window only bounds the wait for stragglers.
                    try:
                        batch.append(queue.get_nowait())
                        continue
                    except asyncio.QueueEmpty:
                        pass
                    # Urgent lane: a priority request closes the window —
                    # it coalesces with the backlog already drained but
                    # never waits for stragglers.
                    if not window_open or any(r.priority > 0 for r in batch):
                        break
                    remaining = t_close - self._loop.time()
                    if remaining <= 0.0:
                        break
                    try:
                        batch.append(await asyncio.wait_for(queue.get(), remaining))
                    except asyncio.TimeoutError:
                        break
                if _telemetry.enabled():
                    # The coalescing wait, attributed to the request that
                    # opened the round (the one that actually waited).
                    _telemetry.record_span(
                        "service.coalesce",
                        self._loop.time() - t_open,
                        ctx=batch[0].trace_ctx,
                        model=model_id,
                        batch=len(batch),
                    )
                now = time.monotonic()
                live = []
                for req in batch:
                    if req.deadline is not None and now > req.deadline:
                        self.metrics.inc("deadline_exceeded")
                        self._fail(req, DeadlineExceededError(
                            f"request expired {now - req.deadline:.3f}s before dispatch"
                        ))
                    else:
                        live.append(req)
                if not live:
                    continue
                if len(live) > 1:
                    self.metrics.inc("batches")
                for kind, group in self._plan(live):
                    await self._dispatch(model_id, kind, group)
        except asyncio.CancelledError:
            # Requests already taken off the queue (collected into the
            # current round, or in groups not yet dispatched) are no
            # longer reachable by stop()'s queue drain — fail them here
            # or their callers would await forever.
            for req in batch:
                self._fail(req, ServiceClosedError("service stopped"))
            raise

    def _plan(self, live: List[_Request]) -> List[Tuple[str, List[_Request]]]:
        """Group a round's requests into the fewest engine calls.

        Groups come back highest-priority first, so an urgent request's
        engine call runs before the round's bulk traffic.
        """
        groups: List[Tuple[str, List[_Request]]] = []
        shared = [r for r in live if r.z is None]
        if len(shared) == 1:
            groups.append(("single", shared))
        elif shared:
            groups.append(("stack", shared))
        solo = [r for r in live if r.z is not None]
        if self.rhs_batching:
            by_targets: Dict[Tuple, List[_Request]] = {}
            for req in solo:
                if req.z is not None and req.z.ndim == 1:
                    by_targets.setdefault(array_content_key(req.targets), []).append(req)
                else:
                    groups.append(("single", [req]))
            for group in by_targets.values():
                groups.append(("rhs", group) if len(group) > 1 else ("single", group))
        else:
            groups.extend(("single", [req]) for req in solo)
        groups.sort(key=lambda g: max(r.priority for r in g[1]), reverse=True)
        return groups

    async def _dispatch(self, model_id: str, kind: str, group: List[_Request]) -> None:
        assert self._loop is not None
        try:
            results, degraded = await self._loop.run_in_executor(
                self._executor, self._execute, model_id, kind, group
            )
        except asyncio.CancelledError:
            for req in group:
                self._fail(req, ServiceClosedError("service stopped mid-dispatch"))
            raise
        except BaseException as exc:  # noqa: BLE001 - forwarded to the callers
            if len(group) > 1:
                # One malformed request must not poison its batch: retry
                # each request alone so the error reaches only its owner.
                self.metrics.inc("batch_retries")
                for req in group:
                    await self._dispatch(model_id, "single", [req])
                return
            if isinstance(exc, DeadlineExceededError):
                self.metrics.inc("deadline_exceeded")
            else:
                self.metrics.inc("errors", len(group))
            for req in group:
                self._fail(req, exc)
            return
        now = time.monotonic()
        if degraded:
            self.metrics.inc("degraded", len(group))
        for req, result in zip(group, results):
            # A caller may have cancelled its future (e.g. wait_for
            # timeout); only deliveries that actually happen count as
            # completed or contribute a latency sample.
            if not req.future.done():
                req.future.set_result((result, {"degraded": degraded}))
                self.metrics.inc("completed")
                self.metrics.observe_latency(now - req.t_submit)

    def _execute(
        self, model_id: str, kind: str, group: Sequence[_Request]
    ) -> Tuple[List[np.ndarray], bool]:
        """Run one coalesced engine call (executor thread).

        Returns the per-request results plus a ``degraded`` flag — true
        when the answers came from a fallback engine generation. Queue
        wait may have consumed a request's whole deadline, so deadlines
        are re-checked here: expired work raises instead of occupying
        an engine. Infrastructure failures (and only those) feed the
        model's circuit breaker; an open breaker serves the
        last-known-good generation when one exists and fails fast with
        :class:`CircuitOpenError` otherwise.
        """
        if not _telemetry.enabled():
            return self._execute_inner(model_id, kind, group)
        # Executor threads never inherit the submitting task's
        # contextvars: re-activate the lead request's trace context so
        # engine/stage spans attach under it, and record each request's
        # queue wait (submit → execution start) in its own trace.
        now = time.monotonic()
        for req in group:
            _telemetry.record_span(
                "service.queue_wait",
                max(0.0, now - req.t_submit),
                ctx=req.trace_ctx,
                model=model_id,
            )
        with _trace_context.activate(group[0].trace_ctx):
            with _telemetry.span(
                "service.execute", model=model_id, kind=kind, batch=len(group)
            ):
                return self._execute_inner(model_id, kind, group)

    def _execute_inner(
        self, model_id: str, kind: str, group: Sequence[_Request]
    ) -> Tuple[List[np.ndarray], bool]:
        now = time.monotonic()
        for req in group:
            if req.deadline is not None and now > req.deadline:
                raise DeadlineExceededError(
                    f"request expired {now - req.deadline:.3f}s before execution"
                )
        breaker = self._breakers.get(model_id)
        if not breaker.allow():
            fallback = self.registry.fallback_engine(model_id)
            if fallback is None:
                raise CircuitOpenError(
                    f"model {model_id!r} circuit breaker is open",
                    retry_after=breaker.retry_after,
                )
            _telemetry.annotate("degraded", "breaker open: last-known-good engine")
            return self._run_engine(fallback, kind, group), True
        try:
            engine = self.registry.engine(model_id)
            fault_point("engine.predict")
            results = self._run_engine(engine, kind, group)
        except _USER_ERRORS:
            raise
        except BaseException:
            breaker.record_failure()
            raise
        breaker.record_success()
        return results, self.registry.is_degraded(model_id)

    def _run_engine(
        self, engine, kind: str, group: Sequence[_Request]
    ) -> List[np.ndarray]:
        self.metrics.inc("engine_calls")
        if kind == "stack":
            self.metrics.inc("coalesced_requests", len(group))
            return engine.predict_many([req.targets for req in group])
        if kind == "rhs":
            self.metrics.inc("coalesced_requests", len(group))
            stacked = np.column_stack([req.z for req in group])
            out = engine.predict(group[0].targets, z=stacked)
            return [np.ascontiguousarray(out[:, j]) for j in range(len(group))]
        req = group[0]
        return [engine.predict(req.targets, z=req.z)]

    def breaker_states(self) -> Dict[str, dict]:
        """Per-model circuit-breaker snapshots (for metrics surfaces)."""
        return self._breakers.snapshot()

    def _fail(self, req: _Request, exc: BaseException) -> None:
        if not req.future.done():
            req.future.set_exception(exc)

    # ------------------------------------------------------------- plumbing
    @property
    def closed(self) -> bool:
        """True while the service is not accepting requests."""
        return self._closed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PredictionService(window={self.batch_window * 1e3:.1f}ms, "
            f"max_batch={self.max_batch}, queue={self.max_queue}, "
            f"{'closed' if self._closed else 'running'})"
        )
