"""Roofline task costs: compute-bound vs memory-bound kernel times.

Each kernel's time on a machine is ``max(flops / sustained_flops,
bytes / memory_bandwidth)`` — the roofline. Dense tile kernels at the
paper's tile sizes are firmly compute-bound; TLR kernels have low
arithmetic intensity and often land on the bandwidth roof, which is
exactly the regime shift the paper discusses when motivating larger TLR
tile sizes (nb = 1900 vs 560).
"""

from __future__ import annotations

from dataclasses import dataclass

from .machine import MachineSpec

__all__ = ["TaskCost", "task_time"]


@dataclass(frozen=True)
class TaskCost:
    """Flop and byte footprint of one task."""

    flops: float
    bytes: float

    def __add__(self, other: "TaskCost") -> "TaskCost":
        return TaskCost(self.flops + other.flops, self.bytes + other.bytes)

    def scaled(self, factor: float) -> "TaskCost":
        """Cost multiplied by ``factor`` (e.g. a task count)."""
        return TaskCost(self.flops * factor, self.bytes * factor)


def task_time(
    cost: TaskCost,
    machine: MachineSpec,
    *,
    cores: int = 1,
    efficiency: float | None = None,
) -> float:
    """Roofline execution time of a task on ``cores`` of ``machine``.

    Parameters
    ----------
    cost:
        Flops and bytes of the task.
    machine:
        Hardware description.
    cores:
        Cores cooperating on this task (tile tasks use 1; aggregate
        estimates pass the full core count).
    efficiency:
        Fraction of peak sustained; defaults to the machine's dense
        efficiency.
    """
    eff = machine.eff_dense if efficiency is None else efficiency
    per_core_gflops = machine.peak_gflops / machine.cores * eff
    compute_s = cost.flops / (per_core_gflops * 1e9 * cores)
    # Bandwidth is shared; a single core can typically draw ~1/4 of the
    # socket bandwidth, saturating as more cores join.
    share = min(1.0, max(cores / machine.cores, 0.25))
    mem_s = cost.bytes / (machine.mem_bw_gbs * 1e9 * share)
    return max(compute_s, mem_s)
