"""Performance models standing in for the paper's hardware (DESIGN.md §4).

The paper times one MLE iteration on four Intel shared-memory servers
(Fig. 3) and on 256/1024 nodes of the Shaheen-2 Cray XC40 (Fig. 4-5) at
n up to 2M. A pure-Python substrate cannot execute those sizes, so this
subpackage reproduces the *performance structure* instead:

* :mod:`machine` / :mod:`cluster` — hardware descriptions (peak flops,
  sustained efficiencies, memory bandwidth/capacity, interconnect);
* :mod:`flops` — exact per-kernel flop/byte counters for the dense-tile
  and TLR algorithms implemented in :mod:`repro.linalg`;
* :mod:`rankmodel` — parametric model of TLR tile ranks vs accuracy and
  tile separation, calibratable against measured ranks;
* :mod:`costmodel` — roofline task costs (compute- vs memory-bound);
* :mod:`analytic` — closed-form aggregate time/memory estimates for one
  MLE iteration or prediction at paper scale, with OOM detection;
* :mod:`distsim` — a discrete-event simulator of task execution over a
  2-D block-cyclic tile distribution, cross-validating the closed form
  on small tile counts;
* :mod:`calibrate` — replay a recorded telemetry span sink
  (:mod:`repro.telemetry`) into measured per-phase costs, comparable
  against the analytic predictions;
* :mod:`autotune` — seeded micro-probes (GEMM/POTRF/generation/
  compression/tile-Cholesky) that fit the model's machine constants by
  least squares on the current host and persist them as a versioned
  :class:`~repro.perfmodel.autotune.CalibrationProfile`;
* :mod:`planner` — searches the fitted model for the cheapest feasible
  configuration (tile size, TLR accuracy, compression batch, serving
  workers, batching window) with predicted phase times; exposed as
  :func:`repro.plan` and ``GET /v1/plan``.
"""

from .machine import MachineSpec, MACHINES, get_machine
from .cluster import ClusterSpec, shaheen2
from .flops import (
    gemm_flops,
    lr_gemm_flops,
    lr_syrk_flops,
    lr_trsm_flops,
    potrf_flops,
    syrk_flops,
    trsm_flops,
)
from .rankmodel import RankModel, calibrate_rank_model
from .costmodel import TaskCost, task_time
from .analytic import PerfEstimate, estimate_mle_iteration, estimate_prediction
from .calibrate import compare_to_estimate, load_spans, phase_costs
from .distsim import DistributedSimulator, SimReport
from .autotune import (
    CalibrationProfile,
    ProbeSample,
    autotune,
    fit_constants,
    fit_profile,
    run_probes,
    samples_from_spans,
)
from .planner import (
    Plan,
    Planner,
    default_profile,
    plan,
    planned_tile_size,
    predict_workload,
    set_default_profile,
    task_counts,
)

__all__ = [
    "MachineSpec",
    "MACHINES",
    "get_machine",
    "ClusterSpec",
    "shaheen2",
    "potrf_flops",
    "trsm_flops",
    "syrk_flops",
    "gemm_flops",
    "lr_trsm_flops",
    "lr_syrk_flops",
    "lr_gemm_flops",
    "RankModel",
    "calibrate_rank_model",
    "TaskCost",
    "task_time",
    "PerfEstimate",
    "estimate_mle_iteration",
    "estimate_prediction",
    "DistributedSimulator",
    "SimReport",
    "load_spans",
    "phase_costs",
    "compare_to_estimate",
    "CalibrationProfile",
    "ProbeSample",
    "autotune",
    "fit_constants",
    "fit_profile",
    "run_probes",
    "samples_from_spans",
    "Plan",
    "Planner",
    "default_profile",
    "plan",
    "planned_tile_size",
    "predict_workload",
    "set_default_profile",
    "task_counts",
]
