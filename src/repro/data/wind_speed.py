"""Synthetic substitute for the Middle-East wind-speed dataset.

**Substitution note (see DESIGN.md §4).** The paper uses a WRF-ARW
regional climate simulation over the Arabian peninsula (5 km horizontal
resolution; domain 20°E-83°E, 5°S-36°N; Sept 1 2017 00:00, layer 0) and
fits per-region Matérn models reported in Table II. WRF output is not
reproducible offline, so this module generates Gaussian random fields with
**the paper's full-tile Table II estimates as ground truth** on the same
domain. Wind-speed fields are markedly smoother than soil moisture
(θ3 ≈ 1.2-1.4 vs ≈ 0.5) with larger variance — the property that makes
Table II's TLR accuracy requirements differ from Table I's, which is what
the reproduction must preserve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..kernels.covariance import MaternCovariance
from ..utils.rng import SeedLike, as_generator, spawn_generators
from .datasets import GeoDataset
from .fields import sample_gaussian_field
from .regions import Region, partition_bbox

__all__ = [
    "WIND_SPEED_BBOX",
    "WIND_SPEED_REGION_THETA",
    "WindSpeedGenerator",
    "make_wind_speed_dataset",
]

#: WRF domain over the Arabian peninsula (lon_min, lon_max, lat_min, lat_max).
WIND_SPEED_BBOX: Tuple[float, float, float, float] = (20.0, 83.0, -5.0, 36.0)

#: Paper Table II, "Full-tile" columns: region -> (variance, range, smoothness).
WIND_SPEED_REGION_THETA: Dict[str, Tuple[float, float, float]] = {
    "R1": (8.715, 32.083, 1.210),
    "R2": (12.517, 27.237, 1.274),
    "R3": (10.819, 18.634, 1.416),
    "R4": (12.270, 17.112, 1.170),
}


@dataclass
class WindSpeedGenerator:
    """Generator for per-region synthetic wind-speed fields.

    Same construction as :class:`repro.data.soil_moisture.SoilMoistureGenerator`
    but over the WRF domain with Table II ground truth (4 regions, 2 x 2).
    """

    points_per_region: int = 800
    jitter_cells: float = 0.4

    def regions(self) -> List[Region]:
        """The four regions R1..R4 as a 2 x 2 grid over the WRF domain."""
        return partition_bbox(WIND_SPEED_BBOX, nx=2, ny=2, prefix="R")

    def region_model(self, name: str) -> MaternCovariance:
        """Ground-truth Matérn model for region ``name`` (Table II full-tile)."""
        theta1, theta2, theta3 = WIND_SPEED_REGION_THETA[name]
        return MaternCovariance(theta1, theta2, theta3, metric="gcd")

    def _region_locations(self, region: Region, n: int, rng: np.random.Generator) -> np.ndarray:
        side = int(np.ceil(np.sqrt(n)))
        lon_step = (region.lon_max - region.lon_min) / side
        lat_step = (region.lat_max - region.lat_min) / side
        i, j = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
        lon = region.lon_min + (i + 0.5 + rng.uniform(-self.jitter_cells, self.jitter_cells, i.shape)) * lon_step
        lat = region.lat_min + (j + 0.5 + rng.uniform(-self.jitter_cells, self.jitter_cells, j.shape)) * lat_step
        pts = np.column_stack([lon.ravel(), lat.ravel()])
        idx = rng.choice(pts.shape[0], size=n, replace=False)
        return pts[np.sort(idx)]

    def region_dataset(self, name: str, seed: SeedLike = None, *, n: Optional[int] = None) -> GeoDataset:
        """Sample one region's synthetic wind-speed dataset."""
        rng = as_generator(seed)
        region = next(r for r in self.regions() if r.name == name)
        n_pts = n or self.points_per_region
        pts = self._region_locations(region, n_pts, rng)
        model = self.region_model(name)
        values = sample_gaussian_field(pts, model, rng)
        return GeoDataset(
            locations=pts,
            values=values,
            metric="gcd",
            name=f"wind_speed[{name}]",
            meta={
                "theta_true": model.theta.copy(),
                "region": region,
                "source": "synthetic substitute for WRF Middle-East wind speed",
            },
        )

    def all_regions(self, seed: SeedLike = None, *, n: Optional[int] = None) -> Dict[str, GeoDataset]:
        """Sample every region with independent RNG streams."""
        names = list(WIND_SPEED_REGION_THETA)
        rngs = spawn_generators(len(names), seed)
        return {name: self.region_dataset(name, rng, n=n) for name, rng in zip(names, rngs)}


def make_wind_speed_dataset(
    region: str = "R1",
    n: int = 800,
    seed: SeedLike = None,
) -> GeoDataset:
    """Convenience constructor for one region's synthetic dataset."""
    if region not in WIND_SPEED_REGION_THETA:
        raise KeyError(
            f"unknown region {region!r}; expected one of {sorted(WIND_SPEED_REGION_THETA)}"
        )
    return WindSpeedGenerator(points_per_region=n).region_dataset(region, seed)
