"""PredictionService: micro-batching parity, coalescing, deadlines,
backpressure, and lifecycle.

Tests drive asyncio explicitly (``asyncio.run``) so no async test
plugin is required.
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.data import generate_irregular_grid, sample_gaussian_field
from repro.exceptions import (
    DeadlineExceededError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.kernels import MaternCovariance
from repro.mle import MLEstimator
from repro.serving import ModelBundle, ModelRegistry, PredictionService

N, NB, ACC = 144, 36, 1e-9
VARIANTS = ("full-block", "full-tile", "tlr")


@pytest.fixture(scope="module")
def problem():
    locs = generate_irregular_grid(N, seed=0)
    model = MaternCovariance(1.0, 0.1, 0.5)
    z = sample_gaussian_field(locs, model, seed=1)
    return locs, z, model


def make_registry(problem, variant="full-block", **bundle_kwargs) -> ModelRegistry:
    locs, z, model = problem
    bundle = ModelBundle(
        model=model, locations=locs, z=z, variant=variant,
        tile_size=NB, acc=ACC, **bundle_kwargs,
    )
    return ModelRegistry(max_models=4).add_bundle("m", bundle)


# --------------------------------------------------------------------------
# Coalescing parity: micro-batched == sequential, bit for bit.
# --------------------------------------------------------------------------


@pytest.mark.parametrize("variant", VARIANTS)
def test_concurrent_requests_bit_identical_to_sequential(problem, variant):
    registry = make_registry(problem, variant)
    rng = np.random.default_rng(5)
    target_sets = [
        np.ascontiguousarray(rng.random((m, 2))) for m in (7, 3, 11, 5, 9, 4)
    ]
    # Sequential reference: one engine, one predict per target set.
    sequential = [registry.engine("m").predict(t) for t in target_sets]

    async def main():
        async with PredictionService(
            registry, batch_window=0.2, max_batch=32, rhs_batching=True
        ) as svc:
            outs = await asyncio.gather(
                *[svc.predict("m", t) for t in target_sets]
            )
            return outs, svc.metrics.snapshot()

    with registry:
        outs, snap = asyncio.run(main())
    for got, ref in zip(outs, sequential):
        np.testing.assert_array_equal(got, ref)
    # >= 4 concurrent requests coalesced into <= 2 engine calls.
    assert snap["counters"]["requests"] == len(target_sets)
    assert snap["counters"]["engine_calls"] <= 2
    assert snap["counters"]["coalesced_requests"] >= 4


def test_explicit_rhs_requests_coalesce_to_multirhs(problem):
    locs, z, model = problem
    registry = make_registry(problem)
    targets = generate_irregular_grid(8, seed=7)
    rng = np.random.default_rng(3)
    zs = [z, z + 0.1 * rng.standard_normal(N), rng.standard_normal(N)]
    engine = registry.engine("m")
    sequential = [engine.predict(targets, z=zi) for zi in zs]

    async def main():
        async with PredictionService(registry, batch_window=0.2, max_batch=16) as svc:
            outs = await asyncio.gather(
                *[svc.predict("m", targets, z=zi) for zi in zs]
            )
            return outs, svc.metrics.snapshot()

    with registry:
        outs, snap = asyncio.run(main())
    for got, ref in zip(outs, sequential):
        np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-12)
    assert snap["counters"]["engine_calls"] <= 2


def test_mixed_traffic_grouping(problem):
    locs, z, model = problem
    registry = make_registry(problem)
    t_shared = generate_irregular_grid(6, seed=11)
    t_solo = generate_irregular_grid(4, seed=12)
    engine = registry.engine("m")
    ref_shared = engine.predict(t_shared)
    ref_solo = engine.predict(t_solo, z=2.0 * z)

    async def main():
        async with PredictionService(registry, batch_window=0.2, max_batch=16) as svc:
            shared_calls = [svc.predict("m", t_shared) for _ in range(3)]
            solo_call = svc.predict("m", t_solo, z=2.0 * z)
            out = await asyncio.gather(*shared_calls, solo_call)
            return out, svc.metrics.snapshot()

    with registry:
        out, snap = asyncio.run(main())
    for got in out[:3]:
        np.testing.assert_array_equal(got, ref_shared)
    np.testing.assert_array_equal(out[3], ref_solo)
    # One stacked call for the bound-z trio + one single for the override.
    assert snap["counters"]["engine_calls"] <= 2


def test_unbatched_mode_one_call_per_request(problem):
    registry = make_registry(problem)
    targets = generate_irregular_grid(5, seed=2)

    async def main():
        async with PredictionService(registry, batch_window=0.0, max_batch=1) as svc:
            for _ in range(4):
                await svc.predict("m", targets)
            return svc.metrics.snapshot()

    with registry:
        snap = asyncio.run(main())
    assert snap["counters"]["engine_calls"] == 4
    assert snap["counters"].get("coalesced_requests", 0) == 0


# --------------------------------------------------------------------------
# Deadlines, backpressure, lifecycle.
# --------------------------------------------------------------------------


def test_expired_deadline_rejected_before_dispatch(problem):
    registry = make_registry(problem)
    targets = generate_irregular_grid(5, seed=2)

    async def main():
        async with PredictionService(registry, batch_window=0.01) as svc:
            with pytest.raises(DeadlineExceededError):
                await svc.predict("m", targets, deadline=-1.0)
            # A sane deadline still succeeds.
            out = await svc.predict("m", targets, deadline=30.0)
            return out, svc.metrics.snapshot()

    with registry:
        out, snap = asyncio.run(main())
    assert out.shape == (5,)
    assert snap["counters"]["deadline_exceeded"] == 1
    assert snap["counters"]["completed"] == 1


class _BlockingEngine:
    """Engine stub whose predict blocks until released (backpressure tests)."""

    def __init__(self):
        self.release = threading.Event()
        self.calls = 0

    def predict(self, targets, z=None):
        self.calls += 1
        assert self.release.wait(timeout=30.0)
        return np.zeros(np.asarray(targets).shape[0])

    def predict_many(self, target_sets, z=None):
        self.calls += 1
        assert self.release.wait(timeout=30.0)
        return [np.zeros(np.asarray(t).shape[0]) for t in target_sets]


def test_backpressure_rejects_when_queue_full(problem):
    registry = ModelRegistry(max_models=2)
    blocker = _BlockingEngine()
    registry.add_engine("slow", blocker)
    targets = np.random.default_rng(0).random((4, 2))

    async def main():
        async with PredictionService(
            registry, batch_window=0.01, max_batch=1, max_queue=2
        ) as svc:
            first = asyncio.ensure_future(svc.predict("slow", targets))
            # Wait until the batcher has taken `first` off the queue and is
            # blocked inside the engine call.
            for _ in range(200):
                await asyncio.sleep(0.005)
                if blocker.calls:
                    break
            assert blocker.calls == 1
            queued = [asyncio.ensure_future(svc.predict("slow", targets)) for _ in range(2)]
            await asyncio.sleep(0)
            with pytest.raises(ServiceOverloadedError):
                await svc.predict("slow", targets)  # queue (2) is full
            blocker.release.set()
            results = await asyncio.gather(first, *queued)
            return results, svc.metrics.snapshot()

    with registry:
        results, snap = asyncio.run(main())
    assert len(results) == 3 and all(r.shape == (4,) for r in results)
    assert snap["counters"]["rejected_overload"] == 1
    assert snap["counters"]["completed"] == 3


def test_engine_errors_propagate_to_callers(problem):
    registry = ModelRegistry(max_models=2)

    class _Boom:
        def predict(self, targets, z=None):
            raise ValueError("engine exploded")

        def predict_many(self, target_sets, z=None):
            raise ValueError("engine exploded")

    registry.add_engine("boom", _Boom())

    async def main():
        async with PredictionService(registry, batch_window=0.0) as svc:
            with pytest.raises(ValueError, match="engine exploded"):
                await svc.predict("boom", np.zeros((3, 2)))
            return svc.metrics.snapshot()

    with registry:
        snap = asyncio.run(main())
    assert snap["counters"]["errors"] == 1


def test_closed_service_rejects_and_stop_fails_queued(problem):
    registry = make_registry(problem)
    targets = generate_irregular_grid(5, seed=2)
    svc = PredictionService(registry, batch_window=0.01)

    async def not_started():
        with pytest.raises(ServiceClosedError):
            await svc.predict("m", targets)

    asyncio.run(not_started())

    async def stopped():
        async with PredictionService(registry, batch_window=0.01) as svc2:
            await svc2.predict("m", targets)
        with pytest.raises(ServiceClosedError):
            await svc2.predict("m", targets)
        await svc2.stop()  # idempotent

    with registry:
        asyncio.run(stopped())


def test_stop_fails_inflight_requests(problem):
    registry = ModelRegistry(max_models=2)
    blocker = _BlockingEngine()
    registry.add_engine("slow", blocker)
    targets = np.random.default_rng(0).random((4, 2))

    async def main():
        svc = PredictionService(registry, batch_window=0.01, max_batch=1)
        await svc.start()
        pending = asyncio.ensure_future(svc.predict("slow", targets))
        for _ in range(200):
            await asyncio.sleep(0.005)
            if blocker.calls:
                break
        # Release only after stop() has cancelled the dispatch, so the
        # request deterministically fails closed; the timer unblocks the
        # executor thread so stop()'s executor shutdown can complete.
        threading.Timer(0.2, blocker.release.set).start()
        await svc.stop()
        with pytest.raises(ServiceClosedError):
            await pending

    with registry:
        asyncio.run(main())


def test_fit_save_serve_end_to_end(problem, tmp_path):
    """The acceptance path: fit -> save -> registry -> service, bit-identical."""
    locs, z, model = problem
    est = MLEstimator(locs, z, variant="tlr", tile_size=NB, acc=ACC)
    fit = est.fit(maxiter=12)
    targets = generate_irregular_grid(10, seed=21)
    reference = est.predict(fit, targets)
    path = est.save_fit(fit, tmp_path / "m.bundle")

    async def main():
        with ModelRegistry() as registry:
            registry.register("m", path)
            async with PredictionService(registry, batch_window=0.1) as svc:
                outs = await asyncio.gather(*[svc.predict("m", targets) for _ in range(4)])
                return outs, svc.metrics.snapshot()

    outs, snap = asyncio.run(main())
    for got in outs:
        np.testing.assert_array_equal(got, reference)
    assert snap["counters"]["engine_calls"] <= 2
    # The bundle's factor was adopted — serving never factorized.
    assert snap["counters"]["completed"] == 4


def test_stop_fails_requests_held_in_open_batch_window(problem):
    """Regression: a request already dequeued into a batch whose window is
    still open must fail on stop(), not hang its caller forever."""
    registry = make_registry(problem)
    targets = generate_irregular_grid(5, seed=2)

    async def main():
        svc = PredictionService(registry, batch_window=30.0, max_batch=8)
        await svc.start()
        pending = asyncio.ensure_future(svc.predict("m", targets))
        await asyncio.sleep(0.1)  # batcher holds the request, window open
        t0 = time.monotonic()
        await svc.stop()
        assert time.monotonic() - t0 < 5.0  # no window-length stall
        with pytest.raises(ServiceClosedError):
            await pending

    with registry:
        asyncio.run(main())


def test_unknown_model_rejected_at_submission(problem):
    """Regression: bogus model ids must not allocate queues/batcher tasks."""
    from repro.exceptions import ModelNotFoundError

    registry = make_registry(problem)

    async def main():
        async with PredictionService(registry) as svc:
            with pytest.raises(ModelNotFoundError):
                await svc.predict("no-such-model", np.zeros((3, 2)))
            assert "no-such-model" not in svc._queues  # nothing leaked

    with registry:
        asyncio.run(main())


# --------------------------------------------------------------------------
# Priority lanes and per-model batching policies.
# --------------------------------------------------------------------------


class _RecordingEngine:
    """Engine stub recording the order of coalesced calls."""

    def __init__(self):
        self.calls = []

    def predict(self, targets, z=None):
        self.calls.append(("single", None if z is None else z.shape))
        return np.zeros(np.asarray(targets).shape[0])

    def predict_many(self, target_sets, z=None):
        self.calls.append(("stack", len(target_sets)))
        return [np.zeros(np.asarray(t).shape[0]) for t in target_sets]


def test_priority_request_closes_the_batch_window(problem):
    """A priority request must not wait out a long coalescing window."""
    registry = make_registry(problem)
    targets = generate_irregular_grid(5, seed=2)

    async def main():
        async with PredictionService(registry, batch_window=30.0, max_batch=8) as svc:
            t0 = time.monotonic()
            await svc.predict("m", targets, priority=1)
            return time.monotonic() - t0

    with registry:
        elapsed = asyncio.run(main())
    assert elapsed < 5.0  # nowhere near the 30 s window


def test_priority_group_dispatches_before_bulk(problem):
    """Within one round, the group holding the priority request runs
    first — its engine call precedes the bulk stack."""
    registry = ModelRegistry(max_models=2)
    engine = _RecordingEngine()
    registry.add_engine("rec", engine)
    rng = np.random.default_rng(0)
    t_bulk, t_urgent = rng.random((4, 2)), rng.random((3, 2))
    z = rng.standard_normal(3)

    async def main():
        async with PredictionService(registry, batch_window=0.2, max_batch=8) as svc:
            bulk = [asyncio.ensure_future(svc.predict("rec", t_bulk)) for _ in range(3)]
            urgent = asyncio.ensure_future(
                svc.predict("rec", t_urgent, z=z, priority=5)
            )
            await asyncio.gather(*bulk, urgent)

    with registry:
        asyncio.run(main())
    kinds = [kind for kind, _ in engine.calls]
    assert "single" in kinds and "stack" in kinds
    # The urgent explicit-z single call ran before the bulk stack.
    assert kinds.index("single") < kinds.index("stack")


def test_per_model_policy_overrides_defaults(problem):
    registry = make_registry(problem)
    with registry:
        svc = PredictionService(registry, batch_window=0.25, max_batch=32)
        assert svc.effective_policy("m") == (0.25, 32)
        svc.set_policy("m", batch_window=0.0, max_batch=4)
        assert svc.effective_policy("m") == (0.0, 4)
        assert svc.effective_policy("other") == (0.25, 32)  # untouched
        # Partial updates merge: tuning one knob keeps the other.
        svc.set_policy("m", max_batch=6)
        assert svc.effective_policy("m") == (0.0, 6)
        svc.clear_policy("m")
        assert svc.effective_policy("m") == (0.25, 32)
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            svc.set_policy("m", max_batch=0)


def test_adaptive_window_learned_from_arrival_rate(problem):
    """With adaptive batching the window approximates the time max_batch
    arrivals take at the recent rate, capped at max_window; quiet models
    fall back to the default."""
    registry = make_registry(problem)
    with registry:
        svc = PredictionService(
            registry,
            batch_window=0.003,
            max_batch=8,
            adaptive_window=True,
            max_window=0.5,
        )
        # No traffic yet: default window.
        assert svc.effective_policy("m") == (0.003, 8)
        base = time.monotonic()
        for i in range(21):
            svc.metrics.record_arrival("m", base - 0.2 + 0.01 * i)  # 100 req/s
        window, max_batch = svc.effective_policy("m")
        assert max_batch == 8
        assert window == pytest.approx((8 - 1) / 100.0, rel=1e-6)
        # A slow model's learned window is capped by max_window.
        for i in range(3):
            svc.metrics.record_arrival("cold", base - 2.0 + 0.9 * i)  # ~1.1 req/s
        window, _ = svc.effective_policy("cold")
        assert window == 0.5
        # An explicit per-model policy beats the learned window.
        svc.set_policy("m", batch_window=0.001)
        assert svc.effective_policy("m")[0] == pytest.approx(0.001)


def test_adaptive_window_still_bit_identical(problem):
    """Adaptive batching changes *when* requests dispatch, never what
    they compute: answers stay bit-identical to sequential predicts."""
    registry = make_registry(problem, "tlr")
    rng = np.random.default_rng(17)
    target_sets = [np.ascontiguousarray(rng.random((m, 2))) for m in (5, 9, 3, 7)]
    sequential = [registry.engine("m").predict(t) for t in target_sets]

    async def main():
        async with PredictionService(
            registry, batch_window=0.05, max_batch=16, adaptive_window=True
        ) as svc:
            return await asyncio.gather(*[svc.predict("m", t) for t in target_sets])

    with registry:
        outs = asyncio.run(main())
    for got, ref in zip(outs, sequential):
        np.testing.assert_array_equal(got, ref)


def test_malformed_request_does_not_poison_batch(problem):
    """Regression: one bad request in a coalesced group fails alone; the
    group retries per-request so innocent callers still get answers."""
    locs, z, model = problem
    registry = make_registry(problem)
    targets = generate_irregular_grid(6, seed=13)
    good_z = np.asarray(z)
    bad_z = np.asarray(z)[:-1]  # wrong length: fails only inside the engine
    engine = registry.engine("m")
    reference = engine.predict(targets, z=good_z)

    async def main():
        async with PredictionService(registry, batch_window=0.2, max_batch=8) as svc:
            good = asyncio.ensure_future(svc.predict("m", targets, z=good_z))
            bad = asyncio.ensure_future(svc.predict("m", targets, z=bad_z))
            await asyncio.sleep(0)
            results = await asyncio.gather(good, bad, return_exceptions=True)
            return results, svc.metrics.snapshot()

    with registry:
        (good_result, bad_result), snap = asyncio.run(main())
    np.testing.assert_allclose(good_result, reference, rtol=1e-12, atol=1e-12)
    assert isinstance(bad_result, Exception)
    assert snap["counters"]["errors"] == 1
    assert snap["counters"].get("batch_retries", 0) >= 1
