#!/usr/bin/env python
"""Anatomy of TLR compression (paper §V, Figure 1).

Builds a Matérn covariance matrix, compresses it tile by tile at several
accuracy thresholds, and prints the per-tile rank structure — the
variable-rank pattern sketched in the paper's Figure 1 — plus the effect
of Morton ordering and the choice of compressor.

Run:  python examples/compression_anatomy.py
"""

from __future__ import annotations

import numpy as np

from repro.data import generate_irregular_grid, sort_locations
from repro.experiments.ablation import compression_method_study, ordering_study
from repro.kernels import MaternCovariance
from repro.linalg import TLRMatrix


def rank_structure() -> None:
    n, nb = 900, 150
    locs = generate_irregular_grid(n, seed=0)
    locs, _, _ = sort_locations(locs)
    model = MaternCovariance(1.0, 0.1, 0.5)
    print(f"Matérn covariance, n={n}, tile size nb={nb} ({n // nb} tiles/side)\n")
    for acc in (1e-3, 1e-7, 1e-12):
        tlr = TLRMatrix.from_generator(
            n, nb, lambda rs, cs: model.tile(locs, rs, cs), acc=acc
        )
        rm = tlr.rank_matrix()
        print(f"accuracy {acc:.0e}: tile ranks (diagonal tiles are dense, '-')")
        for i in range(tlr.nt):
            row = " ".join(
                "  - " if i == j else f"{rm[i, j]:4d}" for j in range(tlr.nt)
            )
            print("   " + row)
        print(
            f"   max rank {tlr.max_rank():3d}   mean {tlr.mean_rank():6.1f}   "
            f"memory {tlr.nbytes / 1e6:6.2f} MB vs dense "
            f"{tlr.dense_nbytes() / 1e6:6.2f} MB  (ratio {tlr.compression_ratio():.2f}x)\n"
        )


def main() -> None:
    rank_structure()
    print(ordering_study(n=1024, nb=128).render())
    print(compression_method_study().render())
    print(
        "Take-aways: ranks fall with tile separation and rise with accuracy;"
        "\nMorton ordering is what makes off-diagonal tiles low-rank; all"
        "\nthree compressors honour the accuracy contract at different costs."
    )


if __name__ == "__main__":
    main()
