"""Bound-constrained Nelder-Mead simplex minimization (from scratch).

Implements the standard Nelder-Mead method (reflection, expansion,
outside/inside contraction, shrink) with the adaptive coefficients of
Gao & Han (2012) for dimension-robustness, plus NLopt-style box
constraints: every trial vertex is clamped to the bounds before
evaluation. Termination follows the usual twin criteria on the simplex's
function-value spread (``ftol``) and geometric diameter (``xtol``).

The MLE drivers *maximize* the log-likelihood by minimizing its negation;
this module is a pure minimizer and knows nothing about likelihoods.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..exceptions import OptimizationError
from ..utils.rng import SeedLike, as_generator
from ..utils.validation import as_float_array
from .bounds import clip_to_bounds, validate_bounds
from .result import OptimizeResult

__all__ = ["nelder_mead", "multistart_nelder_mead"]


def _initial_simplex(
    x0: np.ndarray, lower: np.ndarray, upper: np.ndarray, scale: float
) -> np.ndarray:
    """Axis-aligned initial simplex around ``x0``, kept inside the box.

    Each extra vertex perturbs one coordinate by ``scale`` times the box
    width in that coordinate, flipping direction when the step would
    leave the box.
    """
    n = x0.size
    simplex = np.repeat(x0[None, :], n + 1, axis=0)
    widths = upper - lower
    for i in range(n):
        step = scale * widths[i]
        candidate = x0[i] + step
        if candidate > upper[i]:
            candidate = x0[i] - step
        simplex[i + 1, i] = candidate
    return clip_to_bounds(simplex, lower, upper)


def nelder_mead(
    fn: Callable[[np.ndarray], float],
    x0: Sequence[float],
    lower: Sequence[float],
    upper: Sequence[float],
    *,
    ftol: float = 1e-7,
    xtol: float = 1e-7,
    maxiter: int = 500,
    initial_scale: float = 0.10,
    callback: Optional[Callable[[int, np.ndarray, float], None]] = None,
) -> OptimizeResult:
    """Minimize ``fn`` over a box with the Nelder-Mead simplex method.

    Parameters
    ----------
    fn:
        Objective; called with a 1-D parameter vector inside the box.
        May return ``+inf`` (e.g. penalty for a failed factorization).
    x0:
        Starting point (clamped into the box).
    lower, upper:
        Box constraints (elementwise, strict ``lower < upper``).
    ftol:
        Objective-spread tolerance: the simplex's best-worst spread must
        fall below ``ftol * (|f_best| + ftol)``.
    xtol:
        Diameter tolerance: the simplex diameter (relative to box width)
        must fall below ``xtol``. Termination requires **both** the
        ftol and xtol criteria (scipy semantics; either alone fires
        spuriously on symmetric or plateaued objectives).
    maxiter:
        Iteration cap (one reflection cycle per iteration).
    initial_scale:
        Initial simplex size as a fraction of the box width per axis.
    callback:
        Called as ``callback(iteration, best_x, best_f)`` once per
        iteration — the hook the MLE driver uses to log per-iteration
        timings (the quantity Figures 3-4 report).

    Returns
    -------
    :class:`OptimizeResult`
    """
    lo, hi = validate_bounds(lower, upper)
    x0 = clip_to_bounds(as_float_array(x0, "x0"), lo, hi)
    n = x0.size
    if n == 0:
        raise OptimizationError("cannot optimize a zero-dimensional parameter vector")
    if maxiter < 1:
        raise OptimizationError(f"maxiter must be >= 1, got {maxiter}")

    # Gao-Han adaptive coefficients.
    alpha = 1.0
    beta = 1.0 + 2.0 / n
    gamma = 0.75 - 1.0 / (2.0 * n)
    delta = 1.0 - 1.0 / n

    nfev = 0

    def evaluate(x: np.ndarray) -> float:
        nonlocal nfev
        nfev += 1
        val = float(fn(x))
        if np.isnan(val):
            # NaN poisons simplex ordering; treat as "worse than anything".
            return np.inf
        return val

    simplex = _initial_simplex(x0, lo, hi, initial_scale)
    fvals = np.array([evaluate(v) for v in simplex])
    history: list[float] = []
    widths = hi - lo

    converged = False
    message = "maximum number of iterations reached"
    it = 0
    for it in range(1, maxiter + 1):
        order = np.argsort(fvals, kind="stable")
        simplex = simplex[order]
        fvals = fvals[order]
        best, worst = fvals[0], fvals[-1]
        history.append(float(best))
        if callback is not None:
            callback(it, simplex[0].copy(), float(best))

        # Termination: require BOTH criteria (as scipy does) — the
        # f-spread alone fires spuriously when distinct vertices share an
        # objective value (symmetric objectives), and the diameter alone
        # can linger on flat plateaus.
        f_spread = worst - best
        f_ok = np.isfinite(best) and f_spread <= ftol * (abs(best) + ftol)
        diam = float(np.max(np.abs(simplex[1:] - simplex[0]) / widths))
        if f_ok and diam <= xtol:
            converged = True
            message = "simplex spread below ftol and diameter below xtol"
            break

        centroid = simplex[:-1].mean(axis=0)
        xr = clip_to_bounds(centroid + alpha * (centroid - simplex[-1]), lo, hi)
        fr = evaluate(xr)
        if fr < fvals[0]:
            # Try expanding further along the reflection direction.
            xe = clip_to_bounds(centroid + beta * (xr - centroid), lo, hi)
            fe = evaluate(xe)
            if fe < fr:
                simplex[-1], fvals[-1] = xe, fe
            else:
                simplex[-1], fvals[-1] = xr, fr
        elif fr < fvals[-2]:
            simplex[-1], fvals[-1] = xr, fr
        else:
            if fr < fvals[-1]:
                # Outside contraction.
                xc = clip_to_bounds(centroid + gamma * (xr - centroid), lo, hi)
                fc = evaluate(xc)
                accept = fc <= fr
            else:
                # Inside contraction.
                xc = clip_to_bounds(centroid - gamma * (centroid - simplex[-1]), lo, hi)
                fc = evaluate(xc)
                accept = fc < fvals[-1]
            if accept:
                simplex[-1], fvals[-1] = xc, fc
            else:
                # Shrink toward the best vertex.
                for i in range(1, n + 1):
                    simplex[i] = clip_to_bounds(
                        simplex[0] + delta * (simplex[i] - simplex[0]), lo, hi
                    )
                    fvals[i] = evaluate(simplex[i])

    order = np.argsort(fvals, kind="stable")
    simplex = simplex[order]
    fvals = fvals[order]
    return OptimizeResult(
        x=simplex[0].copy(),
        fun=float(fvals[0]),
        nfev=nfev,
        nit=it,
        converged=converged,
        message=message,
        history=history,
    )


def multistart_nelder_mead(
    fn: Callable[[np.ndarray], float],
    lower: Sequence[float],
    upper: Sequence[float],
    *,
    n_starts: int = 3,
    x0: Optional[Sequence[float]] = None,
    seed: SeedLike = None,
    **nm_kwargs: object,
) -> OptimizeResult:
    """Run Nelder-Mead from several starts; return the best result.

    The first start is ``x0`` (when given); the rest are drawn
    log-uniformly inside the box, which suits positive scale parameters
    like the Matérn theta. Evaluation counts are aggregated.
    """
    lo, hi = validate_bounds(lower, upper)
    rng = as_generator(seed)
    starts: list[np.ndarray] = []
    if x0 is not None:
        starts.append(clip_to_bounds(as_float_array(x0, "x0"), lo, hi))
    log_ok = bool(np.all(lo > 0.0))
    while len(starts) < max(1, n_starts):
        u = rng.random(lo.size)
        if log_ok:
            starts.append(np.exp(np.log(lo) + u * (np.log(hi) - np.log(lo))))
        else:
            starts.append(lo + u * (hi - lo))
    best: Optional[OptimizeResult] = None
    total_nfev = 0
    total_nit = 0
    for start in starts:
        res = nelder_mead(fn, start, lo, hi, **nm_kwargs)  # type: ignore[arg-type]
        total_nfev += res.nfev
        total_nit += res.nit
        if best is None or res.fun < best.fun:
            best = res
    assert best is not None
    best.nfev = total_nfev
    best.nit = total_nit
    return best
