"""Deterministic fault injection: rules, plans, arming, propagation."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.exceptions import (
    BundleCorruptError,
    ConfigurationError,
    InjectedFaultError,
)
from repro.resilience import faults
from repro.resilience.faults import (
    PLAN_ENV,
    SITES,
    FaultPlan,
    FaultRule,
    active_plan,
    arm,
    disarm,
    fault_point,
)


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends with no plan armed (module globals and
    the environment both clean), so tests cannot leak faults into each
    other or into the rest of the suite."""
    disarm()
    yield
    disarm()


# ---------------------------------------------------------------------------
# FaultRule validation and firing windows
# ---------------------------------------------------------------------------


def test_unknown_site_rejected():
    with pytest.raises(ConfigurationError, match="unknown fault site"):
        FaultRule(site="store.laod", action="raise")


def test_unknown_action_rejected():
    with pytest.raises(ConfigurationError, match="unknown fault action"):
        FaultRule(site="store.load", action="explode")


def test_negative_after_and_zero_count_rejected():
    with pytest.raises(ConfigurationError, match="after"):
        FaultRule(site="store.load", action="raise", after=-1)
    with pytest.raises(ConfigurationError, match="count"):
        FaultRule(site="store.load", action="raise", count=0)


def test_delay_rule_needs_positive_delay():
    with pytest.raises(ConfigurationError, match="delay"):
        FaultRule(site="store.load", action="delay", delay=0.0)


def test_raise_rule_restricted_to_library_exceptions():
    with pytest.raises(ConfigurationError, match="unraisable"):
        FaultRule(site="store.load", action="raise", exception="SystemExit")
    # Library exceptions and OSError are fine.
    FaultRule(site="store.load", action="raise", exception="BundleCorruptError")
    FaultRule(site="store.load", action="raise", exception="OSError")


def test_fires_on_window():
    rule = FaultRule(site="worker.pipe", action="raise", after=2, count=3)
    assert [rule.fires_on(h) for h in range(1, 8)] == [
        False, False, True, True, True, False, False,
    ]


# ---------------------------------------------------------------------------
# FaultPlan firing semantics (in-process counters)
# ---------------------------------------------------------------------------


def test_raise_fires_on_configured_hit_then_recovers():
    plan = arm(FaultPlan(rules=[
        FaultRule(site="engine.predict", action="raise", after=1, count=1)
    ]))
    fault_point("engine.predict")  # hit 1: passes
    with pytest.raises(InjectedFaultError, match="engine.predict"):
        fault_point("engine.predict")  # hit 2: fires
    fault_point("engine.predict")  # hit 3: recovered
    assert plan.hits("engine.predict") == 3


def test_raise_rule_custom_exception_and_message():
    arm(FaultPlan(rules=[FaultRule(
        site="store.load", action="raise",
        exception="BundleCorruptError", message="torn bundle",
    )]))
    with pytest.raises(BundleCorruptError, match="torn bundle"):
        fault_point("store.load")


def test_unmatched_sites_do_not_count_or_fire():
    plan = arm(FaultPlan(rules=[FaultRule(site="fit.leg", action="raise")]))
    for _ in range(5):
        fault_point("runtime.task")
    assert plan.hits("runtime.task") == 0  # no rule -> not even counted


def test_delay_action_sleeps(monkeypatch):
    slept = []
    monkeypatch.setattr(faults.time, "sleep", slept.append)
    arm(FaultPlan(rules=[
        FaultRule(site="worker.pipe", action="delay", delay=0.25)
    ]))
    fault_point("worker.pipe")
    assert slept == [0.25]


def test_corrupt_flips_one_deterministic_byte(tmp_path):
    victim = tmp_path / "payload.bin"
    original = bytes(range(256)) * 4
    victim.write_bytes(original)
    arm(FaultPlan(rules=[FaultRule(site="store.load", action="corrupt")], seed=7))
    fault_point("store.load", path=str(victim))
    mutated = victim.read_bytes()
    assert len(mutated) == len(original)
    diffs = [i for i, (a, b) in enumerate(zip(original, mutated)) if a != b]
    assert len(diffs) == 1
    assert mutated[diffs[0]] == original[diffs[0]] ^ 0xFF

    # Same seed corrupts the same byte on a fresh run; the choice is
    # derived from sha256, not the process-randomized hash().
    victim.write_bytes(original)
    disarm()
    arm(FaultPlan(rules=[FaultRule(site="store.load", action="corrupt")], seed=7))
    fault_point("store.load", path=str(victim))
    assert [i for i, (a, b) in enumerate(zip(original, victim.read_bytes())) if a != b] == diffs


def test_corrupt_without_path_raises_injected_fault():
    arm(FaultPlan(rules=[FaultRule(site="engine.predict", action="corrupt")]))
    with pytest.raises(InjectedFaultError, match="no file path"):
        fault_point("engine.predict")


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def test_plan_json_round_trip(tmp_path):
    plan = FaultPlan(
        rules=[
            FaultRule(site="worker.pipe", action="kill", after=3),
            FaultRule(site="store.load", action="corrupt", count=2),
        ],
        seed=42,
        state_dir=tmp_path / "chaos",
    )
    clone = FaultPlan.from_json(plan.to_json())
    assert clone.seed == 42
    assert clone.state_dir == plan.state_dir
    assert [r.to_dict() for r in clone.rules] == [r.to_dict() for r in plan.rules]


# ---------------------------------------------------------------------------
# Cross-process state: shared counters and the fired journal
# ---------------------------------------------------------------------------


def test_state_dir_counters_shared_between_plan_instances(tmp_path):
    rules = [FaultRule(site="fit.leg", action="raise", after=1)]
    first = FaultPlan(rules=rules, state_dir=tmp_path)
    second = FaultPlan(rules=rules, state_dir=tmp_path)
    first.visit("fit.leg")  # hit 1 passes
    with pytest.raises(InjectedFaultError):
        second.visit("fit.leg")  # a different instance sees hit 2
    assert first.hits("fit.leg") == second.hits("fit.leg") == 2


def test_fired_journal_records_each_firing(tmp_path):
    plan = FaultPlan(
        rules=[FaultRule(site="runtime.task", action="raise", after=1, count=2)],
        state_dir=tmp_path,
    )
    for _ in range(4):
        try:
            plan.visit("runtime.task")
        except InjectedFaultError:
            pass
    fired = plan.fired()
    assert [(f["site"], f["hit"], f["action"]) for f in fired] == [
        ("runtime.task", 2, "raise"),
        ("runtime.task", 3, "raise"),
    ]
    assert all(f["pid"] == os.getpid() for f in fired)


def test_subprocess_counts_against_the_same_state_dir(tmp_path):
    """A plan propagated via the environment is lazily armed by a child
    process, and with a ``state_dir`` the child's hits continue the
    parent's count — the contract the chaos soak's kill rules rely on."""
    plan = arm(
        FaultPlan(
            rules=[FaultRule(site="fit.leg", action="raise", after=1)],
            state_dir=tmp_path,
        ),
        propagate=True,
    )
    fault_point("fit.leg")  # parent takes hit 1
    code = (
        "from repro.resilience.faults import fault_point\n"
        "from repro.exceptions import InjectedFaultError\n"
        "try:\n"
        "    fault_point('fit.leg')\n"
        "except InjectedFaultError:\n"
        "    print('FIRED')\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", code], env=env, cwd="/root/repo",
        capture_output=True, text=True, timeout=60,
    )
    assert out.stdout.strip() == "FIRED", out.stderr
    assert plan.hits("fit.leg") == 2
    (fired,) = plan.fired()
    assert fired["pid"] != os.getpid()


# ---------------------------------------------------------------------------
# Module-level arming and the unarmed fast path
# ---------------------------------------------------------------------------


def test_fault_point_is_a_noop_when_unarmed():
    assert active_plan() is None
    for site in SITES:
        fault_point(site)  # must not raise, sleep, or create state


def test_arm_disarm_round_trip():
    plan = FaultPlan(rules=[FaultRule(site="store.load", action="raise")])
    assert arm(plan) is plan
    assert active_plan() is plan
    disarm()
    assert active_plan() is None
    fault_point("store.load")  # disarmed again -> no-op


def test_propagate_exports_and_disarm_cleans_the_environment():
    plan = FaultPlan(rules=[FaultRule(site="store.load", action="raise")], seed=3)
    arm(plan, propagate=True)
    assert json.loads(os.environ[PLAN_ENV])["seed"] == 3
    disarm()
    assert PLAN_ENV not in os.environ


def test_env_pending_lazy_arm(monkeypatch):
    """A process that inherits ``REPRO_FAULT_PLAN`` (as workers do) arms
    itself on its first fault point."""
    plan = FaultPlan(rules=[FaultRule(site="worker.pipe", action="raise")])
    monkeypatch.setenv(PLAN_ENV, plan.to_json())
    monkeypatch.setattr(faults, "_PLAN", None)
    monkeypatch.setattr(faults, "_ENV_PENDING", True)
    with pytest.raises(InjectedFaultError):
        fault_point("worker.pipe")
    assert active_plan() is not None
