"""FitOrchestrator: parallel-multistart parity, kill-resume, lifecycle.

The two acceptance-critical assertions live here:

* a job fanned out across processes converges to the **bit-identical**
  theta of the sequential in-process ``MLEstimator.fit`` (same seed);
* a fit killed mid-run (SIGKILL on the worker, or a full orchestrator
  shutdown) resumes from its checkpoint and still matches the
  uninterrupted run exactly.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.data import generate_irregular_grid, sample_gaussian_field
from repro.exceptions import FittingError
from repro.fitting import FitJobSpec, FitOrchestrator, JobStore
from repro.kernels import MaternCovariance
from repro.mle import MLEstimator

N = 144


@pytest.fixture(scope="module")
def data():
    locs = generate_irregular_grid(N, seed=0)
    z = sample_gaussian_field(locs, MaternCovariance(1.0, 0.1, 0.5), seed=1)
    return locs, z


def _wait_status(store, job_id, statuses, timeout=60.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        state = store.state(job_id)
        if state["status"] in statuses:
            return state
        time.sleep(0.02)
    raise AssertionError(
        f"job never reached {statuses}; stuck at {store.state(job_id)['status']!r}"
    )


class TestParallelMultistartParity:
    def test_parallel_multistart_matches_sequential_fit_bit_for_bit(
        self, data, tmp_path
    ):
        locs, z = data
        ref = MLEstimator(locs, z).fit(maxiter=60, n_starts=3, seed=21)
        store = JobStore(tmp_path)
        with FitOrchestrator(store, max_workers=3) as orch:
            job = orch.submit(
                FitJobSpec(locations=locs, z=z, maxiter=60, n_starts=3, seed=21)
            )
            record = orch.wait(job, timeout=300)
        assert record["status"] == "done"
        np.testing.assert_array_equal(
            np.asarray(record["result"]["theta"]), ref.theta
        )
        assert record["result"]["loglik"] == ref.loglik
        assert record["result"]["nfev"] == ref.optimizer.nfev
        assert record["result"]["nit"] == ref.optimizer.nit
        # Every start left a per-iteration loglik trace.
        assert sorted(record["trace"]) == ["0", "1", "2"]
        for entries in record["trace"].values():
            assert entries[0]["iteration"] == 1
            assert all("loglik" in e and len(e["theta"]) == 3 for e in entries)

    def test_bundle_serves_the_fit_and_records_reproducibility_meta(
        self, data, tmp_path
    ):
        from repro.mle import PredictionEngine
        from repro.serving import load_model

        locs, z = data
        store = JobStore(tmp_path)
        with FitOrchestrator(store, max_workers=2) as orch:
            job = orch.submit(
                FitJobSpec(locations=locs, z=z, maxiter=40, n_starts=2, seed=5)
            )
            record = orch.wait(job, timeout=300)
        bundle = load_model(record["bundle_path"])
        np.testing.assert_array_equal(
            bundle.model.theta, np.asarray(record["result"]["theta"])
        )
        fit_meta = bundle.info["fit"]
        assert fit_meta["seed"] == 5
        assert fit_meta["n_starts"] == 2
        assert fit_meta["maxiter"] == 40
        assert set(fit_meta["bounds"]) == {"lower", "upper"}
        # The bundle is servable as-is (factor included by default).
        targets = np.random.default_rng(2).random((5, 2))
        engine = PredictionEngine.from_bundle(record["bundle_path"])
        assert engine.predict(targets).shape == (5,)
        assert engine.n_factorizations == 0  # adopted the persisted factor

    def test_replaying_bundle_fit_meta_reproduces_theta(self, data, tmp_path):
        """The satellite's promise: a served model's fit is reproducible
        from its bundle alone — rebuild the estimator from the bundle's
        data and rerun fit() with info['fit']'s settings."""
        from repro.serving import load_model

        locs, z = data
        store = JobStore(tmp_path)
        with FitOrchestrator(store, max_workers=2) as orch:
            job = orch.submit(
                FitJobSpec(locations=locs, z=z, maxiter=40, n_starts=2, seed=5)
            )
            record = orch.wait(job, timeout=300)
        bundle = load_model(record["bundle_path"])
        meta = bundle.info["fit"]
        replay = MLEstimator(
            bundle.locations,
            bundle.z,
            model=bundle.model,
            variant=bundle.variant,
            tile_size=bundle.tile_size,
            acc=bundle.acc,
            use_morton=False,  # bundle locations are already Morton-ordered
        ).fit(
            x0=meta["x0"],
            bounds=(meta["bounds"]["lower"], meta["bounds"]["upper"]),
            maxiter=meta["maxiter"],
            ftol=meta["ftol"],
            xtol=meta["xtol"],
            n_starts=meta["n_starts"],
            seed=meta["seed"],
        )
        np.testing.assert_array_equal(replay.theta, bundle.model.theta)


class TestKillResume:
    def _long_spec(self, data):
        # ftol/xtol far below reachable: the fit runs its full maxiter
        # budget, leaving a wide window to kill it mid-run.
        locs, z = data
        return FitJobSpec(
            locations=locs, z=z, maxiter=150, ftol=1e-13, xtol=1e-13
        )

    def test_sigkilled_worker_is_respawned_and_matches_uninterrupted(
        self, data, tmp_path
    ):
        locs, z = data
        ref = MLEstimator(locs, z).fit(maxiter=150, ftol=1e-13, xtol=1e-13)
        store = JobStore(tmp_path)
        with FitOrchestrator(
            store, max_workers=1, checkpoint_every=1, max_restarts=2
        ) as orch:
            job = orch.submit(self._long_spec(data))
            deadline = time.time() + 120
            killed = False
            while time.time() < deadline and not killed:
                if store.has_checkpoint(job, 0):
                    pids = orch.worker_pids(job)
                    if pids:
                        os.kill(pids[0], signal.SIGKILL)
                        killed = True
                        break
                if store.state(job)["status"] in ("done", "failed"):
                    break
                time.sleep(0.01)
            record = orch.wait(job, timeout=300)
        assert killed, "the fit finished before the test could kill it"
        assert record["status"] == "done"
        assert record["restarts"] >= 1
        np.testing.assert_array_equal(
            np.asarray(record["result"]["theta"]), ref.theta
        )
        assert record["result"]["nfev"] == ref.optimizer.nfev
        assert record["result"]["nit"] == ref.optimizer.nit
        # The resumed trace is seamless: iterations 1..nit exactly once.
        iters = [e["iteration"] for e in record["trace"]["0"]]
        assert iters == list(range(1, record["result"]["nit"] + 1))

    def test_orchestrator_shutdown_then_fresh_orchestrator_resumes(
        self, data, tmp_path
    ):
        """The cold-restart path: stop() mid-fit (process terminated),
        then a brand-new orchestrator over the same store picks the job
        up from its checkpoint and finishes it to the same theta."""
        locs, z = data
        ref = MLEstimator(locs, z).fit(maxiter=150, ftol=1e-13, xtol=1e-13)
        store = JobStore(tmp_path)
        orch = FitOrchestrator(store, max_workers=1, checkpoint_every=1).start()
        job = orch.submit(self._long_spec(data))
        deadline = time.time() + 120
        while time.time() < deadline:
            if store.has_checkpoint(job, 0):
                break
            time.sleep(0.01)
        orch.stop()
        state = store.state(job)
        assert state["status"] in ("checkpointed", "queued")
        resumed_from = store.state(job)
        with FitOrchestrator(store, max_workers=1, checkpoint_every=1) as orch2:
            record = orch2.wait(job, timeout=300)
        assert record["status"] == "done"
        np.testing.assert_array_equal(
            np.asarray(record["result"]["theta"]), ref.theta
        )
        assert record["result"]["nfev"] == ref.optimizer.nfev
        del resumed_from


class TestFinalizeRestart:
    def test_killed_finalize_is_respawned_within_the_budget(
        self, data, tmp_path, monkeypatch
    ):
        """A finalize process that dies abnormally (OOM-style kill) gets
        the same restart treatment as a start leg — the completed fit
        iterations on disk must not be thrown away. Simulated by
        patching the (fork-inherited) finalize target to SIGKILL itself
        on its first run."""
        import repro.fitting.orchestrator as orchestrator_module

        real_finalize = orchestrator_module._finalize_job

        def kill_once_then_finalize(root, job_id):
            flag = os.path.join(root, "killed-once.flag")
            if not os.path.exists(flag):
                with open(flag, "w"):
                    pass
                os.kill(os.getpid(), signal.SIGKILL)
            real_finalize(root, job_id)

        monkeypatch.setattr(
            orchestrator_module, "_finalize_job", kill_once_then_finalize
        )
        locs, z = data
        store = JobStore(tmp_path)
        with FitOrchestrator(
            store, max_workers=1, max_restarts=1, start_method="fork"
        ) as orch:
            job = orch.submit(FitJobSpec(locations=locs, z=z, maxiter=15))
            record = orch.wait(job, timeout=300)
        assert record["status"] == "done"
        assert record["restarts"] == 1  # the finalize respawn
        assert record["bundle_path"]

    def test_killed_finalize_exhausting_budget_fails_the_job(
        self, data, tmp_path, monkeypatch
    ):
        import repro.fitting.orchestrator as orchestrator_module

        def always_die(root, job_id):
            os.kill(os.getpid(), signal.SIGKILL)

        monkeypatch.setattr(orchestrator_module, "_finalize_job", always_die)
        locs, z = data
        store = JobStore(tmp_path)
        with FitOrchestrator(
            store, max_workers=1, max_restarts=1, start_method="fork"
        ) as orch:
            job = orch.submit(FitJobSpec(locations=locs, z=z, maxiter=10))
            record = orch.wait(job, timeout=300)
        assert record["status"] == "failed"
        assert "finalize process died" in record["error"]


class TestLifecycleAndFailures:
    def test_deterministic_failure_is_not_retried(self, data, tmp_path):
        """An objective that raises must fail the job immediately (the
        error is deterministic) without burning the restart budget —
        and a multi-start failure must not wedge the scheduler when the
        abort races the sibling legs' own reaping (regression: the
        abort used to pop keys the reap loop still held)."""
        locs, z = data
        bad = FitJobSpec(
            locations=locs,
            z=z,
            n_starts=2,
            maxiter=10,
            model_spec={
                "family": "MaternCovariance",
                "metric": "euclidean",
                "nugget": -1.0,  # rejected by the kernel at resolve time
                "theta": [1.0, 0.1, 0.5],
            },
        )
        store = JobStore(tmp_path)
        with FitOrchestrator(store, max_workers=2, max_restarts=5) as orch:
            job = orch.submit(bad)
            record = orch.wait(job, timeout=120)
            assert record["status"] == "failed"
            assert record["restarts"] == 0
            assert record["error"]
            # The scheduler survived the abort: a fresh, healthy job
            # still runs to completion on the same orchestrator.
            good = orch.submit(FitJobSpec(locations=locs, z=z, maxiter=10))
            assert orch.wait(good, timeout=300)["status"] == "done"
            assert orch.running

    def test_restart_budget_is_per_start_leg(self, data, tmp_path):
        """One machine-wide kill that takes out every leg of a
        multistart job once must not exhaust a max_restarts=1 budget
        (regression: the counter used to be shared across legs)."""
        locs, z = data
        store = JobStore(tmp_path)
        spec = FitJobSpec(
            locations=locs, z=z, maxiter=150, ftol=1e-13, xtol=1e-13, n_starts=2
        )
        with FitOrchestrator(
            store, max_workers=2, checkpoint_every=1, max_restarts=1
        ) as orch:
            job = orch.submit(spec)
            deadline = time.time() + 120
            killed = 0
            while time.time() < deadline and killed == 0:
                pids = orch.worker_pids(job)
                if len(pids) == 2 and all(
                    store.has_checkpoint(job, i) for i in range(2)
                ):
                    for pid in pids:  # both legs die in one "event"
                        os.kill(pid, signal.SIGKILL)
                    killed = len(pids)
                    break
                if store.state(job)["status"] in ("done", "failed"):
                    break
                time.sleep(0.01)
            record = orch.wait(job, timeout=300)
        assert killed == 2, "the fit finished before the test could kill it"
        assert record["status"] == "done"
        assert record["restarts"] == 2  # one respawn per leg, job-level total

    def test_wait_timeout_raises(self, data, tmp_path):
        store = JobStore(tmp_path)
        orch = FitOrchestrator(store, max_workers=1)  # never started
        job = orch.submit(FitJobSpec(locations=data[0], z=data[1], maxiter=5))
        with pytest.raises(FittingError):
            orch.wait(job, timeout=0.2)

    def test_submit_before_start_is_scheduled_at_start(self, data, tmp_path):
        store = JobStore(tmp_path)
        orch = FitOrchestrator(store, max_workers=1)
        job = orch.submit(FitJobSpec(locations=data[0], z=data[1], maxiter=10))
        assert store.state(job)["status"] == "queued"
        with orch:
            record = orch.wait(job, timeout=300)
        assert record["status"] == "done"

    def test_concurrency_cap_respected_across_jobs(self, data, tmp_path):
        locs, z = data
        store = JobStore(tmp_path)
        with FitOrchestrator(store, max_workers=2) as orch:
            jobs = [
                orch.submit(FitJobSpec(locations=locs, z=z, maxiter=25, n_starts=2))
                for _ in range(2)
            ]
            peak = 0
            deadline = time.time() + 300
            while time.time() < deadline:
                with orch._cond:
                    live = len(orch._procs) + len(orch._finalizers)
                peak = max(peak, live)
                states = [store.state(j)["status"] for j in jobs]
                if all(s in ("done", "failed") for s in states):
                    break
                time.sleep(0.01)
            assert peak <= 2
            for j in jobs:
                assert orch.wait(j, timeout=60)["status"] == "done"

    def test_validate_options(self):
        FitOrchestrator.validate_options({"max_workers": 4})
        with pytest.raises(FittingError):
            FitOrchestrator.validate_options({"max_workerz": 4})
        with pytest.raises(FittingError):
            FitOrchestrator.validate_options({"max_workers": 0})
        with pytest.raises(FittingError):
            FitOrchestrator.validate_options({"checkpoint_every": 0})
        with pytest.raises(FittingError):
            FitOrchestrator.validate_options({"start_method": "teleport"})
