"""Speedup summaries (paper §VIII-B/C headline numbers).

The paper reports maximum TLR-over-full speedups of roughly 7X
(Haswell), 10X (Broadwell), 13X (KNL) and 5X (Skylake) at accuracy 1e-5
on shared memory, and up to 5X on Shaheen-2. This module derives the
same summary from the modeled Figure 3/4 series, so the claim can be
checked against the reproduction quantitatively.
"""

from __future__ import annotations

from typing import Sequence

from .common import ResultTable
from .fig3 import PAPER_MACHINES, model_series as fig3_series
from .fig4 import model_series as fig4_series

__all__ = ["shared_memory_speedups", "distributed_speedups", "PAPER_CLAIMED_SPEEDUPS"]

#: §VIII-B: max speedup at accuracy 1e-5, per machine.
PAPER_CLAIMED_SPEEDUPS = {"haswell": 7.0, "broadwell": 10.0, "knl": 13.0, "skylake": 5.0}


def _max_ratio(table: ResultTable, base_col: str, tlr_col: str) -> float:
    """Largest base/tlr time ratio across rows (ignoring missing cells)."""
    bi = table.headers.index(base_col)
    ti = table.headers.index(tlr_col)
    best = 0.0
    for row in table.rows:
        base, tlr = row[bi], row[ti]
        if isinstance(base, (int, float)) and isinstance(tlr, (int, float)) and tlr > 0:
            best = max(best, float(base) / float(tlr))
    return best


def shared_memory_speedups(
    *, machines: Sequence[str] = PAPER_MACHINES, acc: float = 1e-5
) -> ResultTable:
    """Max modeled TLR speedup vs Full-tile and Full-block per machine."""
    table = ResultTable(
        title=f"Speedup summary — shared memory, TLR-acc({acc:.0e})",
        headers=["machine", "vs Full-tile", "vs Full-block", "paper claim (vs full)"],
    )
    col = f"TLR-acc({acc:.0e})"
    for name in machines:
        series = fig3_series(name)
        table.add_row(
            name,
            round(_max_ratio(series, "Full-tile", col), 2),
            round(_max_ratio(series, "Full-block", col), 2),
            PAPER_CLAIMED_SPEEDUPS.get(name),
        )
    table.add_note("paper §VIII-B: 7X/10X/13X/5X maximum speedups at accuracy 1e-5")
    return table


def distributed_speedups(*, n_nodes: int = 256, acc: float = 1e-5) -> ResultTable:
    """Max modeled TLR speedup vs Full-tile on Shaheen-2 allocations."""
    series = fig4_series(n_nodes)
    col = f"TLR-acc({acc:.0e})"
    table = ResultTable(
        title=f"Speedup summary — Shaheen-2 {n_nodes} nodes",
        headers=["accuracy", "max speedup vs Full-tile"],
    )
    for acc_i in (1e-5, 1e-7, 1e-9):
        col = f"TLR-acc({acc_i:.0e})"
        if col in series.headers:
            table.add_row(f"{acc_i:.0e}", round(_max_ratio(series, "Full-tile", col), 2))
    table.add_note("paper §VIII-C: up to 5X on distributed memory")
    return table
