"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so downstream users can catch library failures with a
single ``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An invalid global or per-call configuration value was supplied."""


class ValidationError(ReproError):
    """An argument failed validation before any work was attempted.

    The message names the offending argument. Raised, for example, for
    ragged/object-dtype target lists that :func:`numpy.asarray` would
    otherwise reject with an opaque conversion error deep inside the
    transport.
    """


class ShapeError(ValidationError):
    """An array argument has an incompatible shape."""


class NotPositiveDefiniteError(ReproError):
    """A covariance matrix (or one of its tiles) failed Cholesky.

    This typically signals a too-aggressive TLR accuracy threshold or a
    degenerate parameter vector explored by the optimizer; MLE drivers catch
    it and assign a penalty likelihood rather than aborting the search.
    """


class CompressionError(ReproError):
    """Low-rank compression could not meet the requested accuracy."""


class RuntimeEngineError(ReproError):
    """The task runtime was used incorrectly (e.g. after shutdown)."""


class SimulationError(ReproError):
    """The distributed performance simulator hit an inconsistent state."""


class OutOfMemoryModelError(SimulationError):
    """A modeled execution exceeds per-node memory (paper: missing points).

    Raised (or recorded, depending on API) when the performance model
    predicts that a configuration does not fit in the modeled node memory,
    mirroring the out-of-memory gaps in Figure 4 of the paper.
    """


class OptimizationError(ReproError):
    """The derivative-free optimizer failed to make progress."""


class CalibrationError(ReproError):
    """A performance-model calibration could not be produced or read.

    Raised when a span sink exists but holds no usable measurements
    (telemetry was never armed with ``sink_dir=``, or the run emitted
    nothing), when probe timings are degenerate (non-positive clock
    deltas), or when a persisted
    :class:`~repro.perfmodel.autotune.CalibrationProfile` is missing,
    torn, or of an unsupported version. The message says which input was
    empty/bad and what to do about it.
    """


class PlanError(ReproError):
    """The planner could not produce a feasible execution plan.

    Raised for invalid plan requests (non-positive ``n``, unknown
    substrate, out-of-range accuracy) and when every candidate
    configuration is modeled out-of-memory on the calibrated host.
    Maps to HTTP 400 on ``GET /v1/plan``.
    """


class FittingError(ReproError):
    """Base class for errors raised by the :mod:`repro.fitting` subsystem.

    Raised for invalid job specifications, corrupt job stores, and fit
    jobs that terminally failed (a crashed worker that exhausted its
    restart budget, an objective that raised, ...).
    """


class JobNotFoundError(FittingError):
    """A fit-job id is not known to the :class:`~repro.fitting.JobStore`."""


class CheckpointError(FittingError):
    """A fit checkpoint file is missing, truncated, or inconsistent."""


class InjectedFaultError(ReproError):
    """A deliberately injected fault (:mod:`repro.resilience.faults`).

    Raised by an armed :class:`~repro.resilience.FaultPlan` rule with
    action ``"raise"`` — never by production code paths. Seeing this
    outside a chaos test means a fault plan was left armed.
    """


class TelemetryError(ReproError):
    """The :mod:`repro.telemetry` registry was used inconsistently.

    Raised for programming errors only — re-registering a metric name
    as a different instrument kind, conflicting histogram buckets, or
    decrementing a counter. Recording into a valid instrument never
    raises: observability must not take the observed path down.
    """


class ServingError(ReproError):
    """Base class for errors raised by the :mod:`repro.serving` subsystem."""


class BundleError(ServingError):
    """A persisted model bundle is missing, malformed, or incompatible."""


class BundleCorruptError(BundleError):
    """A bundle's payload failed its integrity check (torn write, bit rot).

    Raised when ``arrays.npz`` does not match the sha256 checksum
    recorded in ``meta.json`` (or cannot be parsed at all). The bundle
    directory is quarantine-renamed to ``*.corrupt`` so retries do not
    keep re-reading the bad copy; the registry falls back to the
    model's last-known-good engine generation when one exists.
    """


class ModelNotFoundError(ServingError):
    """A model id is not known to the :class:`~repro.serving.ModelRegistry`."""


class TraceNotFoundError(ServingError):
    """``/v1/trace/<id>`` found no spans for that trace id.

    Either the id is wrong, telemetry is disabled, or the spans have
    aged out of the bounded per-process rings (``telemetry_max_spans``).
    Maps to HTTP 404.
    """


class ServiceOverloadedError(ServingError):
    """A request was rejected because the service's bounded queue is full.

    This is the backpressure signal: clients should retry with backoff
    or shed load rather than pile more requests onto a saturated model.
    """


class DeadlineExceededError(ServingError):
    """A request's deadline expired before the service could execute it."""


class CircuitOpenError(ServingError):
    """A circuit breaker is open and the request was failed fast.

    Carries ``retry_after`` — the seconds until the breaker next admits
    probe traffic — surfaced over HTTP as a 503 with a ``Retry-After``
    header. The request was **not** executed.
    """

    def __init__(self, message: str = "", retry_after: float = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class LoadShedError(ServingError):
    """A request was shed at admission because the server is saturated.

    Unlike :class:`ServiceOverloadedError` (a per-model bounded queue,
    HTTP 429), this is the server-wide in-flight cap rejecting work
    before any model is chosen; it maps to 503 + ``Retry-After`` and the
    request was **not** executed, so clients may safely retry.
    """

    def __init__(self, message: str = "", retry_after: float = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ServiceClosedError(ServingError):
    """The prediction service is not running (not started, or stopped)."""


class PredictionError(ServingError):
    """A prediction completed but its values cannot be delivered.

    Raised when a degenerate model produces non-finite (NaN/inf)
    predictions and the negotiated transport cannot represent them:
    strict JSON has no ``NaN``/``Infinity`` tokens, so the JSON surface
    answers this typed error instead of emitting unparseable output.
    The binary transport carries the raw float64 bits and therefore
    delivers non-finite predictions verbatim.
    """


class PayloadTooLargeError(ServingError):
    """A request body exceeds the configured ``serving_max_body`` cap.

    Maps to HTTP 413. Raised server-side for oversized declared bodies
    (before reading them) and client-side when asked to JSON-encode a
    body over the cap — the fix for large target sets is the binary
    transport (``transport="binary"``), whose framed float64 payload is
    several times smaller and is streamed instead of materialized.
    """


class WireFormatError(ServingError):
    """A binary-transport message violates the framed wire format.

    Bad magic, an unsupported wire version, a malformed frame header,
    an unsupported dtype, or a stream truncated mid-frame (a connection
    dropped mid-stream). See :mod:`repro.serving.wire` for the format.
    """


class ServerError(ServingError):
    """The serving transport failed (worker crash, protocol error, timeout).

    Raised by the HTTP front-end and client when a request could not be
    answered by a worker at all — as opposed to the typed per-request
    failures (:class:`ModelNotFoundError`, :class:`ServiceOverloadedError`,
    ...) which a worker produced deliberately and which cross the wire
    unchanged.
    """
