"""Tests for the Gaussian log-likelihood evaluators (eq. (1))."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.kernels import MaternCovariance
from repro.mle.loglik import PENALTY_LOGLIK, LikelihoodEvaluator, exact_loglikelihood
from repro.runtime import Runtime


@pytest.fixture(scope="module")
def problem():
    from repro.data import generate_irregular_grid, sample_gaussian_field, sort_locations

    locs = generate_irregular_grid(196, seed=3)
    locs, _, _ = sort_locations(locs)
    model = MaternCovariance(1.0, 0.1, 0.5)
    z = sample_gaussian_field(locs, model, seed=4)
    return locs, z, model


class TestExactLoglikelihood:
    def test_matches_multivariate_normal_formula(self, problem):
        locs, z, model = problem
        sigma = model.matrix(locs)
        n = len(z)
        ref = (
            -0.5 * n * math.log(2 * math.pi)
            - 0.5 * np.linalg.slogdet(sigma)[1]
            - 0.5 * z @ np.linalg.solve(sigma, z)
        )
        assert exact_loglikelihood(locs, z, model) == pytest.approx(ref, rel=1e-10)

    def test_matches_scipy_multivariate_normal(self, problem):
        from scipy.stats import multivariate_normal

        locs, z, model = problem
        sigma = model.matrix(locs)
        ref = multivariate_normal(mean=np.zeros(len(z)), cov=sigma).logpdf(z)
        assert exact_loglikelihood(locs, z, model) == pytest.approx(ref, rel=1e-9)


class TestEvaluatorVariants:
    @pytest.mark.parametrize(
        "variant,acc,tol",
        [
            ("full-block", None, 1e-9),
            ("full-tile", None, 1e-6),
            ("tlr", 1e-9, 1e-3),
            ("tlr", 1e-12, 1e-6),
        ],
    )
    def test_agreement_with_exact(self, problem, variant, acc, tol):
        locs, z, model = problem
        exact = exact_loglikelihood(locs, z, model)
        ev = LikelihoodEvaluator(locs, z, model, variant=variant, acc=acc, tile_size=49)
        assert ev(model.theta) == pytest.approx(exact, abs=abs(exact) * tol + tol)

    def test_accuracy_ladder(self, problem):
        locs, z, model = problem
        exact = exact_loglikelihood(locs, z, model)
        errs = []
        for acc in (1e-3, 1e-6, 1e-9, 1e-12):
            ev = LikelihoodEvaluator(locs, z, model, variant="tlr", acc=acc, tile_size=49)
            errs.append(abs(ev(model.theta) - exact))
        # Tighter accuracy must not be (much) worse.
        assert errs[-1] <= errs[0] + 1e-9
        assert errs[-1] < 1e-4

    def test_negative_is_negated(self, problem):
        locs, z, model = problem
        ev = LikelihoodEvaluator(locs, z, model, variant="full-block")
        assert ev.negative(model.theta) == pytest.approx(-ev(model.theta))

    def test_counters_and_stage_times(self, problem):
        locs, z, model = problem
        ev = LikelihoodEvaluator(locs, z, model, variant="full-tile", tile_size=49)
        ev(model.theta)
        ev(model.theta * 1.1)
        assert ev.n_evals == 2
        assert set(ev.times.stages) == {"generation", "factorization", "solve"}
        assert ev.times.total() > 0.0

    def test_penalty_on_singular_covariance(self):
        # Duplicate locations make Sigma exactly singular for any theta.
        locs = np.array([[0.1, 0.1], [0.1, 0.1], [0.5, 0.5], [0.9, 0.9]])
        z = np.array([0.3, 0.3, -0.1, 0.2])
        model = MaternCovariance(1.0, 0.1, 0.5)
        ev = LikelihoodEvaluator(locs, z, model, variant="full-block")
        assert ev(model.theta) == PENALTY_LOGLIK
        assert ev.n_failures == 1

    def test_shared_runtime_consistency(self, problem):
        locs, z, model = problem
        serial = LikelihoodEvaluator(locs, z, model, variant="tlr", acc=1e-8, tile_size=49)
        want = serial(model.theta)
        with Runtime(num_workers=4) as rt:
            par = LikelihoodEvaluator(
                locs, z, model, variant="tlr", acc=1e-8, tile_size=49, runtime=rt
            )
            got = par(model.theta)
            got2 = par(model.theta)
        assert got == pytest.approx(want, rel=1e-12)
        assert got2 == pytest.approx(want, rel=1e-12)

    def test_invalid_variant(self, problem):
        locs, z, model = problem
        with pytest.raises(ConfigurationError):
            LikelihoodEvaluator(locs, z, model, variant="sparse")

    def test_z_never_mutated(self, problem):
        locs, z, model = problem
        z0 = z.copy()
        for variant, acc in (("full-block", None), ("full-tile", None), ("tlr", 1e-9)):
            ev = LikelihoodEvaluator(locs, z, model, variant=variant, acc=acc, tile_size=49)
            ev(model.theta)
        np.testing.assert_array_equal(z, z0)
