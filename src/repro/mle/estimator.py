"""The MLE driver: fit a Matérn model to data, then predict (paper §III).

:class:`MLEstimator` wires together the pieces exactly as ExaGeoStat
does: (1) Morton-order the locations, (2) wrap a
:class:`~repro.mle.loglik.LikelihoodEvaluator` for the chosen substrate
(full-block / full-tile / TLR), (3) maximize with the bound-constrained
Nelder-Mead optimizer, (4) expose prediction at new locations through the
fitted model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..config import get_config
from ..data.datasets import GeoDataset
from ..data.morton import morton_order
from ..kernels.covariance import CovarianceModel, MaternCovariance
from ..optim.bounds import default_matern_bounds, empirical_start, validate_bounds
from ..optim.neldermead import multistart_nelder_mead, nelder_mead
from ..optim.result import OptimizeResult
from ..runtime import Runtime
from ..utils.timer import Stopwatch
from ..utils.validation import as_float_array, check_locations, check_vector
from .loglik import LikelihoodEvaluator
from .prediction import predict as _predict
from .prediction_engine import PredictionEngine

__all__ = ["MLEstimator", "FitResult"]


@dataclass
class FitResult:
    """Outcome of an MLE fit.

    Attributes
    ----------
    theta:
        Estimated parameter vector (order given by the model family).
    loglik:
        Log-likelihood at ``theta``.
    optimizer:
        Full optimizer result (iterations, evaluations, history).
    n_evals:
        Likelihood evaluations performed.
    time_total:
        Wall-clock seconds for the whole fit.
    time_per_iteration:
        Mean wall-clock seconds per likelihood evaluation — the
        quantity the paper's Figures 3 and 4 report.
    stage_times:
        Cumulative generation / factorization / solve seconds.
    variant, acc:
        Substrate used.
    options:
        The optimizer settings the fit actually ran with — resolved
        seed, ``n_starts``, tolerances, bounds, and starting point —
        recorded so a persisted bundle can state exactly how to
        reproduce its fit (see
        :func:`~repro.serving.store.bundle_from_fit`).
    """

    theta: np.ndarray
    loglik: float
    optimizer: OptimizeResult
    n_evals: int
    time_total: float
    time_per_iteration: float
    stage_times: dict = field(default_factory=dict)
    variant: str = "full-block"
    acc: Optional[float] = None
    options: dict = field(default_factory=dict)

    @property
    def history(self):
        """Per-iteration ``(iteration, theta, fun)`` trajectory of the
        winning optimizer run (``fun`` is the *negative* log-likelihood),
        straight off :attr:`optimizer` — fit-progress reporting needs no
        side channel."""
        return self.optimizer.history


class MLEstimator:
    """Maximum-likelihood estimation of a spatial covariance model.

    Parameters
    ----------
    locations:
        ``(n, d)`` spatial locations.
    z:
        ``(n,)`` observations (zero-mean residuals).
    model:
        Template covariance model; defaults to Matérn with the data's
        metric. Its current ``theta`` is irrelevant — only the family,
        metric, and nugget matter.
    variant:
        ``"full-block"`` (default), ``"full-tile"`` or ``"tlr"``.
    acc:
        TLR accuracy threshold (TLR only).
    tile_size:
        Tile size ``nb`` for tile/TLR substrates.
    metric:
        Distance metric when no template model is given.
    use_morton:
        Reorder locations along the Morton curve before assembling
        covariances (ExaGeoStat always does; disabling it is an ablation).
    runtime:
        Optional shared task runtime for parallel factorizations (and,
        with ``parallel_generation``, fused parallel generation).
    cache_distances, parallel_generation:
        Generation-pipeline overrides forwarded to
        :class:`~repro.mle.loglik.LikelihoodEvaluator` (``None`` uses the
        configured defaults).

    Examples
    --------
    >>> from repro.data import generate_irregular_grid, sample_gaussian_field
    >>> from repro.kernels import MaternCovariance
    >>> locs = generate_irregular_grid(100, seed=0)
    >>> truth = MaternCovariance(1.0, 0.1, 0.5)
    >>> z = sample_gaussian_field(locs, truth, seed=1)
    >>> est = MLEstimator(locs, z, variant="full-block")
    >>> fit = est.fit(maxiter=40)
    >>> fit.theta.shape
    (3,)
    """

    def __init__(
        self,
        locations: np.ndarray,
        z: np.ndarray,
        *,
        model: Optional[CovarianceModel] = None,
        variant: str = "full-block",
        acc: Optional[float] = None,
        tile_size: Optional[int] = None,
        metric: str = "euclidean",
        use_morton: bool = True,
        runtime: Optional[Runtime] = None,
        compression_method: Optional[str] = None,
        cache_distances: Optional[bool] = None,
        parallel_generation: Optional[bool] = None,
    ) -> None:
        locations = check_locations(locations, "locations")
        z = check_vector(as_float_array(z, "z"), locations.shape[0], "z")
        self._perm: Optional[np.ndarray] = None
        if use_morton:
            perm = morton_order(locations)
            locations, z = locations[perm], z[perm]
            self._perm = perm
        self.locations = locations
        self.z = z
        self.model = model or MaternCovariance(metric=metric)
        self.variant = variant
        self.acc = acc
        if (
            tile_size is None
            and variant in ("full-tile", "tlr")
            and get_config().auto_tune
        ):
            # Opt-in self-tuning: adopt the calibrated planner's nb when
            # the caller left tile_size at its default. None (planning
            # failed) falls through to the static config default.
            from ..perfmodel.planner import planned_tile_size

            tile_size = planned_tile_size(
                locations.shape[0], variant=variant, acc=acc
            )
        self.evaluator = LikelihoodEvaluator(
            locations,
            z,
            self.model,
            variant=variant,
            acc=acc,
            tile_size=tile_size,
            runtime=runtime,
            compression_method=compression_method,
            cache_distances=cache_distances,
            parallel_generation=parallel_generation,
            keep_last_factor=True,
        )
        self._engine: Optional[PredictionEngine] = None

    @classmethod
    def from_dataset(cls, dataset: GeoDataset, **kwargs: object) -> "MLEstimator":
        """Build an estimator from a :class:`GeoDataset` (metric inherited)."""
        kwargs.setdefault("metric", dataset.metric)
        if "model" not in kwargs:
            kwargs["model"] = MaternCovariance(metric=dataset.metric)
        return cls(dataset.locations, dataset.values, **kwargs)  # type: ignore[arg-type]

    # ------------------------------------------------------------------ fit
    def default_bounds(self) -> tuple:
        """The optimization box :meth:`fit` uses when none is given.

        :func:`~repro.optim.bounds.default_matern_bounds` scaled to the
        metric (unit square vs GCD degrees), truncated to the variance +
        range box for two-parameter families. Exposed so out-of-process
        fit workers (:mod:`repro.fitting`) resolve the *identical* box —
        bounds shape the multistart draw, so parity with an in-process
        fit depends on this being one code path.
        """
        max_range = 60.0 if self.model.metric in ("gcd", "great_circle") else 5.0
        lo3, hi3 = default_matern_bounds(self.z, max_range=max_range)
        if len(self.model.param_names) == 3:
            return lo3, hi3
        # Two-parameter families: variance + range box.
        return lo3[:2], hi3[:2]

    def fit(
        self,
        *,
        x0: Optional[Sequence[float]] = None,
        bounds: Optional[tuple] = None,
        maxiter: int = 200,
        ftol: float = 1e-6,
        xtol: float = 1e-6,
        n_starts: int = 1,
        seed: Optional[int] = None,
    ) -> FitResult:
        """Maximize the log-likelihood; returns a :class:`FitResult`.

        Parameters
        ----------
        x0:
            Starting ``theta``; defaults to empirical values from the data
            (paper §IV's recommendation).
        bounds:
            ``(lower, upper)`` arrays; defaults to :meth:`default_bounds`.
        maxiter, ftol, xtol:
            Optimizer controls (see
            :func:`~repro.optim.neldermead.nelder_mead`).
        n_starts:
            With ``n_starts > 1``, run a multistart search (first start
            at ``x0``, the rest log-uniform in the box) — useful for the
            weakly identified strong-correlation regimes of Tables I/II.
        seed:
            Seed for the multistart draw (``None`` uses the configured
            ``rng_seed``). Recorded in :attr:`FitResult.options` either
            way, so the fit is reproducible from its result alone.
        """
        if bounds is None:
            lower, upper = self.default_bounds()
        else:
            lower, upper = validate_bounds(*bounds)
        if x0 is None:
            x0 = empirical_start(self.z, lower, upper)
        resolved_seed = get_config().rng_seed if seed is None else int(seed)

        sw = Stopwatch()
        with sw:
            if n_starts > 1:
                result = multistart_nelder_mead(
                    self.evaluator.negative,
                    lower,
                    upper,
                    n_starts=n_starts,
                    x0=x0,
                    seed=resolved_seed,
                    ftol=ftol,
                    xtol=xtol,
                    maxiter=maxiter,
                )
            else:
                result = nelder_mead(
                    self.evaluator.negative,
                    x0,
                    lower,
                    upper,
                    ftol=ftol,
                    xtol=xtol,
                    maxiter=maxiter,
                )
        n_evals = max(1, self.evaluator.n_evals)
        return FitResult(
            theta=result.x.copy(),
            loglik=-result.fun,
            optimizer=result,
            n_evals=self.evaluator.n_evals,
            time_total=sw.elapsed,
            time_per_iteration=sw.elapsed / n_evals,
            stage_times=dict(self.evaluator.times.stages),
            variant=self.variant,
            acc=self.acc,
            options={
                "x0": [float(v) for v in np.asarray(x0, dtype=np.float64)],
                "bounds": {
                    "lower": [float(v) for v in lower],
                    "upper": [float(v) for v in upper],
                },
                "maxiter": int(maxiter),
                "ftol": float(ftol),
                "xtol": float(xtol),
                "n_starts": int(n_starts),
                "seed": resolved_seed,
                "use_morton": self._perm is not None,
            },
        )

    # -------------------------------------------------------------- predict
    def predictor(self, fit: FitResult) -> PredictionEngine:
        """The :class:`PredictionEngine` bound to this fit's model.

        The engine is created once per estimator and shares the fit's
        generation pipeline: the evaluator's
        :class:`~repro.linalg.generation.TileDistanceCache` (or cached
        full distance matrix), the runtime, and the
        ``cache_distances``/``parallel_generation`` knobs. When the
        evaluator's final factorization was computed at exactly
        ``fit.theta`` (and is not already installed), the engine adopts
        it, so the first ``predict`` skips generation *and*
        factorization of ``Sigma_22`` entirely. Subsequent calls — new
        target sets, batched realizations, conditional variances — reuse
        the one cached factor until ``fit.theta`` changes.
        """
        ev = self.evaluator
        model = self.model.with_theta(fit.theta)
        if self._engine is None:
            self._engine = PredictionEngine(
                self.locations,
                self.z,
                model,
                variant=self.variant,
                acc=ev.acc,
                tile_size=ev.tile_size,
                runtime=ev.runtime,
                compression_method=ev.compression_method,
                cache_distances=ev.cache_distances,
                parallel_generation=ev.parallel_generation,
                compression_batch=ev.compression_batch,
                distance_cache=ev.distance_cache,
                full_distances=ev._full_distances,
            )
        else:
            self._engine.set_model(model)
        if (
            ev.last_factor is not None
            and ev.last_theta is not None
            and np.array_equal(ev.last_theta, np.asarray(fit.theta, dtype=np.float64))
            and self._engine._factor is None
        ):
            self._engine.adopt_factor(ev.last_factor, model)
        return self._engine

    def predict(
        self,
        fit: FitResult,
        new_locations: np.ndarray,
        *,
        variant: Optional[str] = None,
        acc: Optional[float] = None,
        tile_size: Optional[int] = None,
        z: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Predict values at ``new_locations`` using the fitted model.

        With no substrate overrides this goes through :meth:`predictor`,
        so repeated calls against one fit reuse the fit's distance cache
        and a single ``Sigma_22`` factorization (pass ``z`` with shape
        ``(n, k)`` for batched multi-RHS prediction). A ``z`` override
        follows the *constructor's* row order — when the estimator
        Morton-reordered the training locations, the override is
        permuted the same way before the solve. Overriding
        ``variant``/``acc``/``tile_size`` to a different substrate falls
        back to the stateless :func:`repro.mle.prediction.predict` with
        this estimator's (possibly Morton-reordered) training data;
        values are identical either way.
        """
        if z is not None and self._perm is not None:
            z = np.asarray(z, dtype=np.float64)[self._perm]
        v = variant or self.variant
        nb = tile_size or self.evaluator.tile_size
        same_substrate = (
            v == self.variant
            and nb == self.evaluator.tile_size
            and (v != "tlr" or acc is None or float(acc) == self.evaluator.acc)
        )
        if same_substrate:
            return self.predictor(fit).predict(new_locations, z=z)
        model = self.model.with_theta(fit.theta)
        return _predict(
            self.locations,
            self.z if z is None else z,
            new_locations,
            model,
            variant=v,
            acc=self.acc if acc is None else acc,
            tile_size=nb,
        )

    def conditional_variance(self, fit: FitResult, new_locations: np.ndarray) -> np.ndarray:
        """Pointwise kriging variance at ``new_locations`` (eq. (3)).

        Runs on this estimator's substrate through :meth:`predictor`,
        reusing the same cached ``Sigma_22`` factorization as
        :meth:`predict`.
        """
        return self.predictor(fit).conditional_variance(new_locations)

    # ---------------------------------------------------------------- serve
    def save_fit(
        self,
        fit: FitResult,
        path: object,
        *,
        include_factor: bool = True,
        include_distance_cache: bool = False,
    ):
        """Persist this fit as a serving bundle (``meta.json`` + ``.npz``).

        Captures everything :class:`~repro.serving.ModelRegistry` needs
        to serve predictions from a fresh process without re-fitting:
        the fitted model, the (Morton-ordered) training locations and
        observations, the substrate configuration, and — with
        ``include_factor`` (default) — the ``Sigma_22`` Cholesky factor
        of :meth:`predictor`, so the loaded engine's predictions are
        bit-identical to this process's and its first request skips
        factorization. ``include_distance_cache`` additionally persists
        the fit's distance blocks (large: ~half the dense matrix) so a
        re-factorization at a *new* theta also pays no distance work.

        Returns the bundle path. See :func:`repro.serving.store.save_model`.
        """
        from ..serving.store import bundle_from_fit  # local: serving imports mle

        bundle = bundle_from_fit(
            self,
            fit,
            include_factor=include_factor,
            include_distance_cache=include_distance_cache,
        )
        return bundle.save(path)
