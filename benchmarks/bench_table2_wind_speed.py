"""Table II bench — per-region Matérn estimates, wind-speed substitute.

Same protocol as Table I over the smoother, higher-variance WRF-domain
fields (θ3 ≈ 1.2-1.4) where the paper found TLR needs tighter accuracy.
"""

from __future__ import annotations

from repro.experiments.common import save_tables
from repro.experiments.table2 import run_table2


def test_table2_wind_speed(benchmark, outdir):
    """Region-wise estimation study for the wind-speed substitute."""
    tables = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    save_tables(list(tables.values()), "table2_wind_speed")

    smoothness = tables["smoothness"]
    full = smoothness.headers.index("Full-tile")
    for row in smoothness.rows:
        # Wind fields are smooth: every full-tile smoothness estimate
        # should land clearly above the soil-moisture regime (~0.5).
        assert float(row[full]) > 0.7, row
