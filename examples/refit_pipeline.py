#!/usr/bin/env python
"""The closed refit loop: serve → new observations → refit job → hot-reload.

``examples/serving_http_demo.py`` hot-reloads a bundle that was re-fitted
*by hand*. This demo closes the loop with the fitting service — fitting
becomes a durable, supervised job instead of a script:

1. **Fit + serve**: a Matérn model is fitted, saved as a bundle, and
   served by a :class:`~repro.serving.ServingServer` (which also hosts a
   :class:`~repro.fitting.FitOrchestrator` in its router process).
2. **Drift**: new observations arrive at the same stations — the field
   changed, the served theta is stale.
3. **Refit job over HTTP**: ``client.fit(from_model=...)`` submits a
   warm-start refit (``POST /v1/fit``) — the served model's bundle
   supplies the locations and substrate, the new observations replace
   ``z``, and the search starts from the served theta. The job runs on
   orchestrator worker processes, checkpointing every iteration; its
   per-iteration log-likelihood trace is polled live from
   ``GET /v1/jobs/<id>``.
4. **Hot-reload under traffic**: when the job lands, the orchestrator
   saves the new bundle and the server swaps it in via the owning
   worker's :meth:`~repro.serving.ModelRegistry.reload` — concurrent
   clients hammer the model throughout and not one request fails;
   answers drain from the old engine's to the new engine's.

Run:  python examples/refit_pipeline.py
"""

from __future__ import annotations

import concurrent.futures
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.data import generate_irregular_grid, sample_gaussian_field, sort_locations
from repro.kernels import MaternCovariance
from repro.mle import MLEstimator
from repro.serving import ServingClient, ServingServer

N_TRAIN = 300
MODEL_ID = "station-field"
MAXITER = 50


def main() -> None:
    locs, _, _ = sort_locations(generate_irregular_grid(N_TRAIN, seed=0))
    truth_v1 = MaternCovariance(1.0, 0.12, 0.5)
    z_v1 = sample_gaussian_field(locs, truth_v1, seed=1)

    # -- 1. fit + serve
    est = MLEstimator(locs, z_v1, variant="full-tile", tile_size=75)
    fit = est.fit(maxiter=MAXITER)
    print(f"v1 theta = {np.round(fit.theta, 4)}  ({fit.n_evals} evaluations)")

    rng = np.random.default_rng(7)
    targets = np.ascontiguousarray(rng.random((24, 2)))
    v1_reference = est.predict(fit, targets)

    with tempfile.TemporaryDirectory() as tmp:
        bundle_path = est.save_fit(fit, Path(tmp) / f"{MODEL_ID}.bundle")
        with ServingServer(
            {MODEL_ID: bundle_path},
            num_workers=2,
            jobs_dir=Path(tmp) / "fit-jobs",
            fit_options={"max_workers": 2, "checkpoint_every": 1},
        ) as server:
            client = ServingClient(server.url)
            assert np.array_equal(client.predict(MODEL_ID, targets), v1_reference)
            print(f"serving v1 on {server.url}")

            # -- 2. the field drifts; new observations arrive
            truth_v2 = MaternCovariance(1.6, 0.2, 0.9)
            z_v2 = sample_gaussian_field(locs, truth_v2, seed=11)

            # -- 3. submit the warm-start refit and keep traffic flowing
            stop = False
            served = {"old": 0, "new": 0}
            failures: list = []

            def background_traffic() -> None:
                with ServingClient(server.url) as cli:
                    while not stop:
                        try:
                            out = cli.predict(MODEL_ID, targets)
                        except Exception as exc:  # noqa: BLE001 - report below
                            failures.append(exc)
                            continue
                        served["old" if np.array_equal(out, v1_reference) else "new"] += 1

            with concurrent.futures.ThreadPoolExecutor(3) as pool:
                traffic = [pool.submit(background_traffic) for _ in range(3)]
                try:
                    t0 = time.perf_counter()
                    job = client.fit(
                        from_model=MODEL_ID, z=z_v2, maxiter=MAXITER, seed=5
                    )
                    print(f"submitted refit job {job['job_id']} (warm start from v1)")

                    last_it = 0
                    deadline = time.time() + 600
                    while time.time() < deadline:
                        record = client.job(job["job_id"])
                        trace = record.get("trace", {}).get("0", [])
                        if trace and trace[-1]["iteration"] > last_it:
                            last_it = trace[-1]["iteration"]
                            print(
                                f"  iteration {last_it:3d}: "
                                f"loglik = {trace[-1]['loglik']:.3f}"
                            )
                        if record["status"] == "failed" or record.get("serve_error"):
                            break
                        if record["status"] == "done" and record.get("served"):
                            break
                        time.sleep(0.2)
                    submit_to_reload = time.perf_counter() - t0
                    time.sleep(0.1)  # a little post-swap traffic
                finally:
                    # Always release the traffic threads — an exception
                    # above must error out, not hang the pool shutdown.
                    stop = True
                for f in traffic:
                    f.result()

            assert record["status"] == "done", record.get("error")
            assert record.get("served"), record.get("serve_error")
            new_theta = np.asarray(record["result"]["theta"])
            print(f"v2 theta = {np.round(new_theta, 4)} "
                  f"(loglik {record['result']['loglik']:.3f}, "
                  f"{record['result']['nfev']} evaluations)")
            print(f"submit → hot-reload in {submit_to_reload:.2f} s")

            # -- 4. the swap was invisible to clients
            assert not failures, f"requests failed during the refit: {failures[:3]}"
            print(
                f"traffic across the refit: {served['old']} old-engine + "
                f"{served['new']} new-engine answers, 0 failures"
            )
            post = client.predict(MODEL_ID, targets)
            assert not np.array_equal(post, v1_reference)
            print("post-reload traffic serves the re-fitted model: yes")
            client.close()


if __name__ == "__main__":
    main()
