"""Serving subsystem: persisted fits, a model registry, and an async service.

The paper's end goal is prediction: ExaGeoStat fits the Matérn model
once, then kriges many unknown measurements from it (§III, Fig. 5).
This package turns the PR-2 :class:`~repro.mle.prediction_engine.
PredictionEngine` — fast but trapped inside the process that ran
``fit()`` — into a serving story:

* :mod:`repro.serving.store` — :class:`ModelBundle`, a ``meta.json`` +
  ``arrays.npz`` persistence format for fitted models (theta, kernel
  spec, Morton-ordered locations, observations, substrate config, and
  optionally the ``Sigma_22`` Cholesky factor and distance caches), so
  a fit survives restarts and ships to serving workers;
* :mod:`repro.serving.registry` — :class:`ModelRegistry`, a thread-safe
  LRU-bounded keeper of warm engines, sharding models across runtime
  worker pools;
* :mod:`repro.serving.service` — :class:`PredictionService`, an asyncio
  micro-batcher that coalesces concurrent predict requests for one
  model into single stacked-target / multi-RHS engine calls, with
  backpressure and per-request deadlines;
* :mod:`repro.serving.metrics` — :class:`ServiceMetrics`, the counter
  and latency surface the benchmarks report from.

Fit → save → serve:

>>> est = MLEstimator(locs, z, variant="tlr")          # doctest: +SKIP
>>> fit = est.fit()                                    # doctest: +SKIP
>>> est.save_fit(fit, "fits/soil.bundle")              # doctest: +SKIP
>>> registry = ModelRegistry().register("soil", "fits/soil.bundle")  # doctest: +SKIP
>>> async with PredictionService(registry) as svc:     # doctest: +SKIP
...     pred = await svc.predict("soil", targets)
"""

from .metrics import ServiceMetrics
from .registry import ModelRegistry
from .service import PredictionService
from .store import ModelBundle, bundle_from_fit, load_model, save_model

__all__ = [
    "ModelBundle",
    "ModelRegistry",
    "PredictionService",
    "ServiceMetrics",
    "bundle_from_fit",
    "load_model",
    "save_model",
]
