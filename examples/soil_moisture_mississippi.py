#!/usr/bin/env python
"""Soil-moisture case study (paper §VIII-D.2, Table I).

Fits region-wise Matérn models to the synthetic substitute for the
Mississippi-basin soil-moisture data (fields generated from the paper's
own full-tile Table I estimates; see DESIGN.md §4), comparing TLR at
several accuracy thresholds against the full-tile reference — the
agreement pattern Table I reports.

Run:  python examples/soil_moisture_mississippi.py [region ...]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import MLEstimator
from repro.data import SOIL_MOISTURE_REGION_THETA, SoilMoistureGenerator
from repro.optim import default_matern_bounds


def fit_region(region: str, n: int = 300) -> None:
    gen = SoilMoistureGenerator(points_per_region=n)
    ds = gen.region_dataset(region, seed=100)
    truth = np.asarray(ds.meta["theta_true"])
    truth_str = ", ".join(f"{v:g}" for v in truth)
    print(f"\nRegion {region}: n={ds.n}, truth (paper full-tile) = ({truth_str})")
    print(f"{'technique':>14}  {'variance':>9}  {'range':>8}  {'smoothness':>10}")
    bounds = default_matern_bounds(ds.values, max_range=60.0)
    for variant, acc in (("tlr", 1e-5), ("tlr", 1e-7), ("tlr", 1e-9), ("full-tile", None)):
        est = MLEstimator.from_dataset(ds, variant=variant, acc=acc, tile_size=75)
        fit = est.fit(maxiter=60, bounds=bounds, x0=truth)
        label = "Full-tile" if acc is None else f"TLR {acc:.0e}"
        print(
            f"{label:>14}  {fit.theta[0]:9.3f}  {fit.theta[1]:8.3f}  {fit.theta[2]:10.3f}"
        )


def main() -> None:
    regions = sys.argv[1:] or ["R1", "R7"]
    for region in regions:
        if region not in SOIL_MOISTURE_REGION_THETA:
            raise SystemExit(f"unknown region {region!r}; choose from R1..R8")
        fit_region(region)
    print(
        "\nPattern to observe (paper Table I): TLR estimates converge to the"
        "\nFull-tile column as accuracy tightens; the strongly-correlated"
        "\nregions (R7, R8) drift most at loose thresholds; smoothness is the"
        "\nmost robust parameter."
    )


if __name__ == "__main__":
    main()
