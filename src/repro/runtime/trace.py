"""Execution tracing for the runtime.

Records per-task (worker, start, end) triples so tests and ablations can
compute utilization, per-codelet time breakdowns, and Gantt-style rows —
the information StarPU exposes through its FxT traces.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple, Union

__all__ = ["TraceEvent", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    """One executed task occurrence."""

    task_id: int
    name: str
    worker: int
    t_start: float
    t_end: float

    @property
    def duration(self) -> float:
        """Seconds spent executing."""
        return self.t_end - self.t_start


class TraceRecorder:
    """Thread-safe accumulator of :class:`TraceEvent` records.

    ``max_events=None`` (the default) keeps every event — the right
    choice for tests and ablations that reconstruct a whole task
    graph. Long-lived runtimes (a serving worker's shard ``Runtime``
    lives for the process lifetime) pass a bound: the recorder becomes
    a ring that drops the *oldest* events and counts the drops in
    :attr:`dropped`, so memory stays O(bound) forever.
    """

    def __init__(self, max_events: Optional[int] = None) -> None:
        self.max_events = None if max_events is None else max(1, int(max_events))
        self._events: Union[List[TraceEvent], Deque[TraceEvent]] = (
            [] if self.max_events is None else deque(maxlen=self.max_events)
        )
        self._dropped = 0
        self._total = 0
        self._lock = threading.Lock()

    def record(self, event: TraceEvent) -> None:
        """Append one event (called from worker threads)."""
        with self._lock:
            if self.max_events is not None and len(self._events) == self.max_events:
                self._dropped += 1
            self._events.append(event)
            self._total += 1

    @property
    def events(self) -> List[TraceEvent]:
        """Snapshot of recorded events (sorted by start time)."""
        with self._lock:
            return sorted(self._events, key=lambda e: e.t_start)

    @property
    def dropped(self) -> int:
        """Events discarded by the ring bound (0 when unbounded)."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._events)

    @property
    def total_recorded(self) -> int:
        """Lifetime event count, including any the ring dropped."""
        return self._total

    def tail(self, since: int) -> List[TraceEvent]:
        """Events recorded after the first *since*, in arrival order.

        The cheap way to ask "what ran during this factorization":
        callers note :attr:`total_recorded` before and read the tail
        after. Best-effort under a full ring (the oldest of the new
        events may already have shifted out).
        """
        with self._lock:
            take = min(len(self._events), max(0, self._total - since))
            if take == 0:
                return []
            return list(self._events)[-take:]

    def clear(self) -> None:
        """Drop all recorded events."""
        with self._lock:
            self._events.clear()
            self._dropped = 0
            self._total = 0

    # ------------------------------------------------------------ analysis
    def makespan(self) -> float:
        """Wall-clock span from first start to last end (0 if empty)."""
        ev = self.events
        if not ev:
            return 0.0
        return max(e.t_end for e in ev) - min(e.t_start for e in ev)

    def busy_time(self) -> float:
        """Total task execution time summed over workers."""
        return sum(e.duration for e in self.events)

    def utilization(self, num_workers: int) -> float:
        """Fraction of worker-seconds spent executing tasks, in [0, 1]."""
        span = self.makespan()
        if span <= 0.0 or num_workers <= 0:
            return 0.0
        return min(1.0, self.busy_time() / (span * num_workers))

    def by_codelet(self) -> Dict[str, Tuple[int, float]]:
        """Per-codelet ``(count, total_seconds)`` summary."""
        out: Dict[str, Tuple[int, float]] = {}
        for e in self.events:
            count, total = out.get(e.name, (0, 0.0))
            out[e.name] = (count + 1, total + e.duration)
        return out

    def gantt_rows(self) -> List[Tuple[int, str, float, float]]:
        """``(worker, name, start, end)`` rows, normalized to t0 = 0."""
        ev = self.events
        if not ev:
            return []
        t0 = min(e.t_start for e in ev)
        return [(e.worker, e.name, e.t_start - t0, e.t_end - t0) for e in ev]
