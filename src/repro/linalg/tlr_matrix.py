"""The Tile Low-Rank matrix format (paper §V, Fig. 1; HiCMA substitute).

A symmetric TLR matrix keeps its ``nt`` diagonal tiles **dense** and every
off-diagonal lower tile ``(i, j), i > j`` as a :class:`LowRank` pair
``(U_ij, V_ij)`` truncated to a fixed accuracy. Ranks vary per tile —
weakly coupled (spatially distant) tile pairs compress harder — and the
format's memory footprint is the paper's headline saving over the dense
representation.

Construction from a covariance kernel generates one dense tile at a time
and compresses it immediately, so the full dense matrix never exists —
this is what lets TLR ExaGeoStat run problem sizes whose dense form
would exceed memory (the missing full-tile points of Fig. 4).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..config import get_config
from ..exceptions import ShapeError
from .compression import LowRank, compress
from .tile_matrix import TileGrid, materialize_tile

__all__ = ["TLRMatrix"]


class TLRMatrix:
    """Symmetric TLR matrix: dense diagonal, low-rank lower off-diagonal.

    Parameters
    ----------
    grid:
        Tile decomposition of the ``n x n`` matrix.
    acc:
        Accuracy threshold the off-diagonal tiles were truncated to.

    Notes
    -----
    Only the lower triangle is stored (the matrix is symmetric); the TLR
    Cholesky overwrites this storage with the lower factor.
    """

    def __init__(self, grid: TileGrid, acc: float) -> None:
        self.grid = grid
        self.acc = float(acc)
        self.diag: list[np.ndarray] = [None] * grid.nt  # type: ignore[list-item]
        self.low: Dict[Tuple[int, int], LowRank] = {}

    # -------------------------------------------------------- constructors
    @classmethod
    def from_generator(
        cls,
        n: int,
        nb: int,
        generate: Callable[[slice, slice], np.ndarray],
        acc: Optional[float] = None,
        *,
        method: Optional[str] = None,
        rule: Optional[str] = None,
        runtime=None,
    ) -> "TLRMatrix":
        """Build from a tile generator, compressing off-diagonals on the fly.

        Parameters
        ----------
        generate:
            ``generate(row_slice, col_slice) -> dense tile``; typically
            ``CovarianceModel.tile`` partially applied to the locations.
        acc:
            Accuracy threshold (default: configured ``tlr_accuracy``).
        method, rule:
            Compression method / truncation rule overrides.
        runtime:
            Optional :class:`~repro.runtime.Runtime`. When given, one
            generate+compress task per tile is inserted (tiles are
            independent, so generation *and* compression run
            concurrently) and the call blocks until the matrix is
            complete. Contents are identical to the serial path.
        """
        cfg = get_config()
        acc = cfg.tlr_accuracy if acc is None else float(acc)
        # Resolve config-dependent choices here: runtime workers must not
        # consult the (thread-local) config.
        method = method or cfg.compression_method
        rule = rule or cfg.truncation
        if runtime is not None:
            from .generation import generate_tlr_matrix  # local: avoid cycle

            return generate_tlr_matrix(
                n, nb, generate, acc, runtime, method=method, rule=rule
            )
        grid = TileGrid(n, nb)
        tlr = cls(grid, acc)
        for i in range(grid.nt):
            for j in range(i + 1):
                expected = (grid.tile_size(i), grid.tile_size(j))
                dense = materialize_tile(
                    generate(grid.tile_slice(i), grid.tile_slice(j)), expected, i, j
                )
                if i == j:
                    tlr.diag[i] = dense
                else:
                    tlr.low[(i, j)] = compress(dense, acc, method=method, rule=rule)
        return tlr

    @classmethod
    def from_dense(
        cls,
        a: np.ndarray,
        nb: int,
        acc: Optional[float] = None,
        *,
        method: Optional[str] = None,
        rule: Optional[str] = None,
    ) -> "TLRMatrix":
        """Compress an existing dense symmetric matrix into TLR format."""
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ShapeError(f"expected square matrix, got {a.shape}")

        def gen(rs: slice, cs: slice) -> np.ndarray:
            return a[rs, cs]

        return cls.from_generator(a.shape[0], nb, gen, acc, method=method, rule=rule)

    # ------------------------------------------------------------ accessors
    @property
    def n(self) -> int:
        """Matrix dimension."""
        return self.grid.n

    @property
    def nt(self) -> int:
        """Tiles per dimension."""
        return self.grid.nt

    def rank(self, i: int, j: int) -> int:
        """Rank of off-diagonal tile ``(i, j)`` (either triangle)."""
        if i == j:
            raise ShapeError("diagonal tiles are dense; rank is undefined")
        key = (i, j) if i > j else (j, i)
        return self.low[key].rank

    def rank_matrix(self) -> np.ndarray:
        """``(nt, nt)`` integer matrix of tile ranks (-1 on the diagonal).

        This is the quantity visualized by the paper's Figure 1.
        """
        nt = self.nt
        out = -np.ones((nt, nt), dtype=np.int64)
        for (i, j), lr in self.low.items():
            out[i, j] = lr.rank
            out[j, i] = lr.rank
        return out

    def max_rank(self) -> int:
        """Largest off-diagonal tile rank (0 when nt == 1)."""
        return max((lr.rank for lr in self.low.values()), default=0)

    def mean_rank(self) -> float:
        """Mean off-diagonal tile rank (0.0 when nt == 1)."""
        if not self.low:
            return 0.0
        return float(np.mean([lr.rank for lr in self.low.values()]))

    # ------------------------------------------------------------- memory
    @property
    def nbytes(self) -> int:
        """Bytes held by the TLR representation (lower storage)."""
        total = sum(int(d.nbytes) for d in self.diag if d is not None)
        total += sum(lr.nbytes for lr in self.low.values())
        return int(total)

    def dense_nbytes(self) -> int:
        """Bytes the equivalent dense lower-symmetric storage would need."""
        g = self.grid
        total = 0
        for i in range(g.nt):
            for j in range(i + 1):
                total += g.tile_size(i) * g.tile_size(j) * 8
        return total

    def compression_ratio(self) -> float:
        """Dense bytes divided by TLR bytes (> 1 means TLR is smaller)."""
        return self.dense_nbytes() / max(1, self.nbytes)

    # ------------------------------------------------------------- exports
    def to_dense(self) -> np.ndarray:
        """Materialize the full symmetric dense matrix.

        Intended for validation at small sizes only (defeats the format's
        purpose at scale).
        """
        g = self.grid
        out = np.zeros((g.n, g.n), dtype=np.float64)
        for i in range(g.nt):
            out[g.tile_slice(i), g.tile_slice(i)] = self.diag[i]
        for (i, j), lr in self.low.items():
            dense = lr.to_dense()
            out[g.tile_slice(i), g.tile_slice(j)] = dense
            out[g.tile_slice(j), g.tile_slice(i)] = dense.T
        return out

    def copy(self) -> "TLRMatrix":
        """Deep copy (fresh tile buffers and factor arrays)."""
        dup = TLRMatrix(self.grid, self.acc)
        dup.diag = [d.copy() for d in self.diag]
        dup.low = {key: lr.copy() for key, lr in self.low.items()}
        return dup

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TLRMatrix(n={self.n}, nb={self.grid.nb}, nt={self.nt}, acc={self.acc:g}, "
            f"max_rank={self.max_rank()}, ratio={self.compression_ratio():.2f}x)"
        )
