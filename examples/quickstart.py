#!/usr/bin/env python
"""Quickstart: TLR-accelerated maximum likelihood estimation + kriging.

Reproduces the paper's core workflow (Figure 2 setup) end to end:

1. generate 400 irregular spatial locations on the unit square;
2. sample a Gaussian random field with a known Matérn model;
3. hold out 38 points, fit the Matérn parameters by MLE on the other
   362 — once with the exact dense solver and once with TLR
   approximation at two accuracy thresholds;
4. predict the held-out values and compare mean squared errors.

Every fit below runs through the *generation pipeline*: locations are
fixed during a fit, so per-tile distance blocks are computed once and
cached across the optimizer's likelihood evaluations (the
``cache_distances`` config knob, on by default — values are
bit-identical to uncached generation). Passing a ``Runtime`` to
``MLEstimator`` additionally fuses tile generation (+ TLR compression)
into the factorization task graph (``parallel_generation``), so
factorization tasks start as soon as their own tile is generated:

    from repro.runtime import Runtime
    with Runtime() as rt:
        est = MLEstimator.from_dataset(train, variant="tlr", runtime=rt)

See ``benchmarks/bench_generation_pipeline.py`` for the measured
per-stage effect.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import MLEstimator, MaternCovariance
from repro.data import (
    GeoDataset,
    generate_irregular_grid,
    sample_gaussian_field,
    train_test_split,
)
from repro.mle import mean_squared_error


def main() -> None:
    theta_true = (1.0, 0.1, 0.5)  # variance, range, smoothness
    print(f"True Matérn parameters: {theta_true}")

    locations = generate_irregular_grid(400, seed=0)
    truth = MaternCovariance(*theta_true)
    z = sample_gaussian_field(locations, truth, seed=1)
    dataset = GeoDataset(locations, z, name="quickstart")
    train, test = train_test_split(dataset, n_test=38, seed=2)
    print(f"{train.n} locations for estimation, {test.n} for prediction validation\n")

    header = f"{'method':>16}  {'theta_hat':>28}  {'loglik':>10}  {'s/iter':>7}  {'MSE':>8}"
    print(header)
    print("-" * len(header))
    for variant, acc in (("full-block", None), ("tlr", 1e-9), ("tlr", 1e-5)):
        est = MLEstimator.from_dataset(train, variant=variant, acc=acc, tile_size=91)
        fit = est.fit(maxiter=120)
        pred = est.predict(fit, test.locations)
        mse = mean_squared_error(test.values, pred)
        name = variant if acc is None else f"{variant}(acc={acc:.0e})"
        theta = np.array2string(fit.theta, precision=4, floatmode="fixed")
        print(
            f"{name:>16}  {theta:>28}  {fit.loglik:10.3f}  "
            f"{fit.time_per_iteration:7.3f}  {mse:8.4f}"
        )

    print(
        "\nTLR estimates and prediction errors track the exact solver — the"
        "\npaper's central accuracy claim — while touching far less data."
    )


if __name__ == "__main__":
    main()
