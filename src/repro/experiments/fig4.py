"""Figure 4 — one MLE iteration on Shaheen-2 (256 and 1024 nodes).

Modeled with the distributed performance estimator: 2-D block-cyclic
distribution, panel multicasts overlapped with computation, per-node
memory accounting. Missing points in the paper are out-of-memory
configurations — the model reports them as ``-`` via the same rule.
The small-``nt`` regime of the same model is cross-validated against the
discrete-event simulator in the test suite.
"""

from __future__ import annotations

from typing import Sequence

from ..perfmodel.analytic import estimate_mle_iteration
from ..perfmodel.cluster import shaheen2
from ..perfmodel.rankmodel import DEFAULT_RANK_MODEL, RankModel
from .common import ResultTable

__all__ = ["PAPER_N_256", "PAPER_N_1024", "model_series"]

#: Figure 4(a): x-axis (locations) for 256 nodes.
PAPER_N_256 = (100_000, 200_000, 250_000, 500_000, 750_000, 1_000_000)

#: Figure 4(b): x-axis for 1024 nodes.
PAPER_N_1024 = (250_000, 500_000, 750_000, 1_000_000, 2_000_000)

#: Accuracies plotted in Figure 4 (no 1e-12 series at scale).
PAPER_ACCURACIES = (1e-9, 1e-7, 1e-5)


def model_series(
    n_nodes: int,
    *,
    n_values: Sequence[int] | None = None,
    accuracies: Sequence[float] = PAPER_ACCURACIES,
    nb_dense: int = 560,
    nb_tlr: int = 1900,
    rank_model: RankModel = DEFAULT_RANK_MODEL,
) -> ResultTable:
    """Modeled Fig. 4 panel for a Shaheen-2 allocation of ``n_nodes``."""
    if n_values is None:
        n_values = PAPER_N_256 if n_nodes <= 512 else PAPER_N_1024
    cluster = shaheen2(n_nodes)
    headers = ["n", "Full-tile"] + [f"TLR-acc({a:.0e})" for a in accuracies]
    table = ResultTable(
        title=(
            f"Figure 4 — modeled time of one MLE iteration on Shaheen-2, "
            f"{n_nodes} nodes [s]"
        ),
        headers=headers,
    )
    for n in n_values:
        row: list[object] = [n]
        est = estimate_mle_iteration(
            n, variant="full-tile", nb=nb_dense, machine=None, cluster=cluster,
            rank_model=rank_model,
        )
        row.append(None if est.oom else est.time_s)
        for acc in accuracies:
            est = estimate_mle_iteration(
                n, variant="tlr", nb=nb_tlr, acc=acc, cluster=cluster, rank_model=rank_model
            )
            row.append(None if est.oom else est.time_s)
        table.add_row(*row)
    table.add_note(
        f"nb={nb_dense} dense / {nb_tlr} TLR (the paper's tuned values); "
        "'-' marks modeled out-of-memory, the paper's missing points"
    )
    return table
