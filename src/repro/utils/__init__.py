"""Shared utilities: validation, timing, logging, and RNG management."""

from .validation import (
    as_float_array,
    check_locations,
    check_positive,
    check_square,
    check_symmetric,
    check_vector,
)
from .timer import Stopwatch, StageTimes, timed
from .rng import as_generator, spawn_generators
from .logging import get_logger

__all__ = [
    "as_float_array",
    "check_locations",
    "check_positive",
    "check_square",
    "check_symmetric",
    "check_vector",
    "Stopwatch",
    "StageTimes",
    "timed",
    "as_generator",
    "spawn_generators",
    "get_logger",
]
