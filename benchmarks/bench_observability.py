#!/usr/bin/env python
"""Observability benchmark: what telemetry costs, off and on.

Three probes, mirroring ``bench_resilience.py``'s methodology:

* **disabled hook overhead** — nanoseconds per ``span("...")`` call
  with telemetry unarmed. The hooks sit on every request, engine, and
  stage path, so the disabled path must be nanosecond-class: the
  derived per-request cost bound (hooks/request x ns/hook vs the
  measured p99) is asserted under 3%.
* **serving p99, off vs on** — the same closed-loop HTTP soak with
  telemetry disabled and then fully armed (spans + metrics mirror +
  trace assembly available). Both runs must stay bit-identical to the
  in-process reference: telemetry is observability, not physics.
* **export under load** — after the armed soak, the Prometheus
  exposition must pass the format lint and a sampled request's trace
  must assemble into a single connected tree.

Results go to ``BENCH_observability.json``.

Run as a script:

    PYTHONPATH=src python benchmarks/bench_observability.py
    PYTHONPATH=src python benchmarks/bench_observability.py --requests 200

or through the benchmark suite (small problem):

    PYTHONPATH=src python -m pytest benchmarks/bench_observability.py -q
"""

from __future__ import annotations

import argparse
import json
import tempfile
import threading
import time
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.data import generate_irregular_grid, sample_gaussian_field, sort_locations
from repro.kernels import MaternCovariance
from repro.mle import PredictionEngine
from repro.serving import ModelBundle, ServingClient, ServingServer
from repro.telemetry import context as tctx
from repro.telemetry import lint_prometheus
from repro.telemetry.spans import configure, reset_telemetry, span

# Spans + fault points a predict crosses end to end (client, router,
# worker, service x4, engine x3, stages); used to bound the disabled
# hooks' per-request cost against the measured p99.
HOOKS_PER_REQUEST = 24


def build_bundle(n: int, tile_size: int, root: Path, theta=(1.0, 0.1, 0.5)) -> Path:
    locs, _, _ = sort_locations(generate_irregular_grid(n, seed=0))
    model = MaternCovariance(*theta)
    z = sample_gaussian_field(locs, model, seed=1)
    bundle = ModelBundle(
        model=model, locations=locs, z=z, variant="full-block", tile_size=tile_size
    )
    bundle.factor = bundle.build_engine().factor()
    return bundle.save(root / "bench.bundle")


def measure_span_overhead(calls: int = 200_000) -> dict:
    """Per-call cost of a disabled and an enabled ``span()``."""
    reset_telemetry()

    t0 = time.perf_counter()
    for _ in range(calls):
        pass
    empty = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(calls):
        with span("bench.noop"):
            pass
    disabled = time.perf_counter() - t0

    configure(enabled=True, max_spans=1024)
    armed_calls = calls // 10  # recording path: 10x fewer iterations
    t0 = time.perf_counter()
    for _ in range(armed_calls):
        with span("bench.noop"):
            pass
    armed = time.perf_counter() - t0
    reset_telemetry()

    return {
        "calls": calls,
        "ns_per_call": max(0.0, (disabled - empty) / calls * 1e9),
        "ns_per_call_gross": disabled / calls * 1e9,
        "ns_per_call_enabled": armed / armed_calls * 1e9,
    }


def drive(
    url: str,
    targets: np.ndarray,
    reference: np.ndarray,
    *,
    n_requests: int,
    concurrency: int,
) -> dict:
    """Closed loop; tallies latency percentiles, errors, wrong answers."""
    remaining = [n_requests]
    lock = threading.Lock()
    latencies: List[float] = []
    errors: List[str] = []
    wrong = [0]

    def worker() -> None:
        with ServingClient(url) as client:
            while True:
                with lock:
                    if remaining[0] <= 0:
                        return
                    remaining[0] -= 1
                t0 = time.perf_counter()
                try:
                    got = client.predict("bench", targets, deadline=30.0)
                    dt = time.perf_counter() - t0
                    ok = np.array_equal(got, reference)
                    with lock:
                        latencies.append(dt)
                        if not ok:
                            wrong[0] += 1
                except Exception as exc:  # noqa: BLE001 - tallied
                    with lock:
                        errors.append(type(exc).__name__)

    threads = [threading.Thread(target=worker) for _ in range(concurrency)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    latencies.sort()

    def pct(q: float) -> float:
        if not latencies:
            return float("nan")
        return latencies[min(len(latencies) - 1, int(len(latencies) * q))] * 1e3

    return {
        "requests": n_requests,
        "succeeded": len(latencies),
        "errors": len(errors),
        "error_types": sorted(set(errors)),
        "wrong_answers": wrong[0],
        "wall_seconds": wall,
        "p50_ms": pct(0.50),
        "p95_ms": pct(0.95),
        "p99_ms": pct(0.99),
    }


def check_export_surfaces(url: str, targets: np.ndarray) -> dict:
    """One traced request: exposition lints, trace assembles connected."""
    with ServingClient(url) as client:
        ctx = tctx.new_trace()
        with tctx.activate(ctx):
            client.predict("bench", targets)
        tree = client.trace(ctx.trace_id)
        exposition = client.metrics(format="prometheus")
    lint_prometheus(exposition)
    return {
        "trace_span_count": tree["span_count"],
        "trace_roots": len(tree["tree"]),
        "prometheus_lines": len(exposition.splitlines()),
        "prometheus_lint": "ok",
    }


def run_bench(
    n: int = 900,
    m: int = 32,
    tile_size: int = 150,
    n_requests: int = 300,
    concurrency: int = 8,
    num_workers: int = 2,
) -> dict:
    overhead = measure_span_overhead()
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        path = build_bundle(n, tile_size, root)
        targets = np.ascontiguousarray(np.random.default_rng(7).random((m, 2)))
        reference = PredictionEngine.from_bundle(path).predict(targets)

        def fresh_server():
            return ServingServer(
                {"bench": path},
                num_workers=num_workers,
                service_options={"batch_window": 0.0},
                enable_fitting=False,
            )

        reset_telemetry()
        with fresh_server() as server:
            with ServingClient(server.url) as warm:
                warm.predict("bench", targets)
            telemetry_off = drive(
                server.url, targets, reference,
                n_requests=n_requests, concurrency=concurrency,
            )

        configure(enabled=True)
        try:
            with fresh_server() as server:
                with ServingClient(server.url) as warm:
                    warm.predict("bench", targets)
                telemetry_on = drive(
                    server.url, targets, reference,
                    n_requests=n_requests, concurrency=concurrency,
                )
                export = check_export_surfaces(server.url, targets)
        finally:
            reset_telemetry()

    # The acceptance claim is about the *disabled* hooks: bound their
    # per-request cost against the measured p99 instead of differencing
    # two noisy soaks.
    hook_cost_ms = HOOKS_PER_REQUEST * overhead["ns_per_call_gross"] / 1e6
    disabled_bound = hook_cost_ms / telemetry_off["p99_ms"] if telemetry_off["p99_ms"] else 0.0
    enabled_delta = (
        (telemetry_on["p99_ms"] - telemetry_off["p99_ms"]) / telemetry_off["p99_ms"]
        if telemetry_off["p99_ms"]
        else 0.0
    )
    return {
        "config": {
            "n": n,
            "m_targets_per_request": m,
            "tile_size": tile_size,
            "n_requests": n_requests,
            "concurrency": concurrency,
            "num_workers": num_workers,
            "hooks_per_request": HOOKS_PER_REQUEST,
        },
        "span_overhead": overhead,
        "telemetry_off": telemetry_off,
        "telemetry_on": telemetry_on,
        "export": export,
        "disabled_p99_overhead_bound": disabled_bound,
        "enabled_p99_delta": enabled_delta,
    }


def write_report(report: dict, out: Optional[str] = None) -> Path:
    if out is None:
        from repro.experiments.common import results_dir

        path = results_dir() / "BENCH_observability.json"
    else:
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def test_observability(outdir):
    """Benchmark-suite entry: small problem, invariant-flavored asserts."""
    report = run_bench(n=400, m=24, tile_size=100, n_requests=120, concurrency=6)
    for leg in ("telemetry_off", "telemetry_on"):
        assert report[leg]["errors"] == 0, report[leg]
        assert report[leg]["wrong_answers"] == 0  # observability, not physics
    # The disabled span hook must stay deep in noise territory (< 5
    # µs/call even on a loaded CI runner; typical is tens of ns) ...
    assert report["span_overhead"]["ns_per_call_gross"] < 5_000
    # ... which bounds the disabled hooks' share of request p99 under
    # the 3% acceptance budget with orders of magnitude to spare.
    assert report["disabled_p99_overhead_bound"] < 0.03
    # Armed telemetry is allowed to cost something, but a runaway
    # (recorder contention, sink I/O on the hot path) must fail loudly.
    assert report["telemetry_on"]["p99_ms"] < report["telemetry_off"]["p99_ms"] * 3 + 10.0
    assert report["export"]["trace_roots"] == 1
    assert report["export"]["trace_span_count"] >= 6
    write_report(report)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=900, help="training-set size")
    parser.add_argument("--m", type=int, default=32, help="targets per request")
    parser.add_argument("--tile-size", type=int, default=150, help="tile size nb")
    parser.add_argument("--requests", type=int, default=300, help="total requests")
    parser.add_argument("--concurrency", type=int, default=8, help="client threads")
    parser.add_argument("--workers", type=int, default=2, help="worker processes")
    parser.add_argument("--out", default=None, help="output JSON path")
    args = parser.parse_args()

    report = run_bench(
        n=args.n,
        m=args.m,
        tile_size=args.tile_size,
        n_requests=args.requests,
        concurrency=args.concurrency,
        num_workers=args.workers,
    )
    path = write_report(report, args.out)
    print(f"wrote {path}")
    so = report["span_overhead"]
    print(
        f"span(): {so['ns_per_call_gross']:.0f} ns/call disabled, "
        f"{so['ns_per_call_enabled']:.0f} ns/call enabled"
    )
    for name in ("telemetry_off", "telemetry_on"):
        r = report[name]
        print(
            f"  {name:>13}: p50 {r['p50_ms']:6.2f} ms  p99 {r['p99_ms']:6.2f} ms  "
            f"errors {r['errors']}  wrong answers {r['wrong_answers']}"
        )
    print(
        f"disabled-hook p99 bound: {report['disabled_p99_overhead_bound']:.4%}  "
        f"enabled p99 delta: {report['enabled_p99_delta']:+.1%}"
    )
    print(
        f"export: {report['export']['trace_span_count']} spans / "
        f"{report['export']['trace_roots']} root, prometheus lint ok"
    )


if __name__ == "__main__":
    main()
