"""Figure 5 — TLR prediction time on Shaheen-2 with 256 nodes.

The prediction operation (eq. (4), 100 unknown measurements) is
dominated by the Cholesky factorization of ``Sigma_22``; the paper notes
its curves mirror the Figure 4(a) MLE curves. Both a modeled paper-scale
series and measured host-scale predictions are produced.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..data.fields import sample_gaussian_field
from ..data.morton import sort_locations
from ..data.synthetic import generate_irregular_grid
from ..kernels.covariance import MaternCovariance
from ..mle.prediction import predict
from ..perfmodel.analytic import estimate_prediction
from ..perfmodel.cluster import shaheen2
from ..perfmodel.rankmodel import DEFAULT_RANK_MODEL, RankModel
from ..utils.timer import Stopwatch
from .common import ResultTable, bench_scale
from .fig4 import PAPER_ACCURACIES, PAPER_N_256

__all__ = ["model_series", "measured_series"]


def model_series(
    *,
    n_nodes: int = 256,
    n_values: Sequence[int] = PAPER_N_256,
    accuracies: Sequence[float] = PAPER_ACCURACIES,
    m: int = 100,
    nb_dense: int = 560,
    nb_tlr: int = 1900,
    rank_model: RankModel = DEFAULT_RANK_MODEL,
) -> ResultTable:
    """Modeled Fig. 5: prediction of ``m`` unknowns on 256 nodes."""
    cluster = shaheen2(n_nodes)
    headers = ["n", "Full-tile"] + [f"TLR-acc({a:.0e})" for a in accuracies]
    table = ResultTable(
        title=(
            f"Figure 5 — modeled TLR prediction time ({m} unknowns) on "
            f"Shaheen-2, {n_nodes} nodes [s]"
        ),
        headers=headers,
    )
    for n in n_values:
        row: list[object] = [n]
        est = estimate_prediction(
            n, m, variant="full-tile", nb=nb_dense, cluster=cluster, rank_model=rank_model
        )
        row.append(None if est.oom else est.time_s)
        for acc in accuracies:
            est = estimate_prediction(
                n, m, variant="tlr", nb=nb_tlr, acc=acc, cluster=cluster, rank_model=rank_model
            )
            row.append(None if est.oom else est.time_s)
        table.add_row(*row)
    table.add_note("factorization dominates (m is small), so curves track Figure 4(a)")
    return table


def measured_series(
    *,
    n_values: Optional[Sequence[int]] = None,
    accuracies: Sequence[float] = (1e-9, 1e-7, 1e-5),
    m: int = 100,
    tile_size: int = 200,
    theta: Sequence[float] = (1.0, 0.1, 0.5),
) -> ResultTable:
    """Measured host-scale prediction wall-clock (full variants + TLR)."""
    if n_values is None:
        n_values = (1600, 2500) if bench_scale() == "quick" else (2500, 4900, 8100)
    model = MaternCovariance(*theta)
    headers = ["n", "Full-block", "Full-tile"] + [f"TLR-acc({a:.0e})" for a in accuracies]
    table = ResultTable(
        title=f"Figure 5 (host) — measured prediction time ({m} unknowns) [s]",
        headers=headers,
    )
    for n in n_values:
        locs = generate_irregular_grid(n + m, seed=0)
        locs, _, _ = sort_locations(locs)
        z = sample_gaussian_field(locs, model, seed=1)
        rng = np.random.default_rng(2)
        holdout = rng.choice(n + m, size=m, replace=False)
        mask = np.ones(n + m, dtype=bool)
        mask[holdout] = False
        row: list[object] = [n]
        variants: list[tuple[str, Optional[float]]] = [("full-block", None), ("full-tile", None)]
        variants += [("tlr", a) for a in accuracies]
        for variant, acc in variants:
            sw = Stopwatch()
            with sw:
                predict(
                    locs[mask], z[mask], locs[holdout], model,
                    variant=variant, acc=acc, tile_size=tile_size,
                )
            row.append(sw.elapsed)
        table.add_row(*row)
    return table
