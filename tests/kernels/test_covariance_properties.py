"""Property-based covariance tests (hypothesis).

The prediction-engine parity suite proves end-to-end value preservation
but cannot localize a failure to a single generation primitive. These
properties pin the primitives themselves on random location clouds and
random tilings:

* ``Sigma(theta)`` is symmetric positive semi-definite;
* ``tile_from_distances`` is bit-identical to direct ``tile`` generation
  (the contract the :class:`~repro.linalg.generation.TileDistanceCache`
  rides on), including nugget placement on off-diagonal slices;
* cross-covariance assembly ``model(d12)`` matches per-entry kernel
  evaluation;
* the tile and cross distance caches return exactly what direct
  computation returns for *every* block — catching cache-keying bugs
  (e.g. two blocks colliding on one key) that downstream parity tests
  can only detect, not localize.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    ExponentialCovariance,
    GaussianCovariance,
    MaternCovariance,
)
from repro.kernels.distance import pairwise_distance, pairwise_distance_block
from repro.linalg.generation import CrossDistanceCache, TileDistanceCache
from repro.linalg.tile_matrix import TileGrid

# Smoothness capped at 2.5: large nu with dense clouds drives Sigma's
# conditioning below float64 resolution, which is a numerics property,
# not an assembly property.
models = st.one_of(
    st.builds(
        MaternCovariance,
        variance=st.floats(0.1, 5.0),
        range_=st.floats(0.02, 0.8),
        smoothness=st.floats(0.3, 2.5),
        nugget=st.sampled_from([0.0, 1e-4, 1e-2]),
    ),
    st.builds(
        ExponentialCovariance,
        variance=st.floats(0.1, 5.0),
        range_=st.floats(0.02, 0.8),
        nugget=st.sampled_from([0.0, 1e-3]),
    ),
    st.builds(
        GaussianCovariance,
        variance=st.floats(0.1, 5.0),
        range_=st.floats(0.02, 0.4),
        nugget=st.sampled_from([1e-6, 1e-3]),
    ),
)


def cloud(seed: int, n: int, d: int = 2) -> np.ndarray:
    return np.random.default_rng(seed).uniform(0.0, 1.0, size=(n, d))


@given(model=models, seed=st.integers(0, 2**31 - 1), n=st.integers(2, 40))
def test_sigma_symmetric_psd(model, seed, n):
    x = cloud(seed, n)
    sigma = model.matrix(x)
    np.testing.assert_array_equal(sigma, sigma.T)
    assert np.all(np.diagonal(sigma) == model.variance + model.nugget)
    eigs = np.linalg.eigvalsh(sigma)
    assert eigs.min() >= -1e-8 * n * model.variance


@given(
    model=models,
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(4, 40),
    data=st.data(),
)
def test_tile_from_distances_consistent_with_tile(model, seed, n, data):
    x = cloud(seed, n)
    r0 = data.draw(st.integers(0, n - 1), label="row_start")
    r1 = data.draw(st.integers(r0 + 1, n), label="row_stop")
    c0 = data.draw(st.integers(0, n - 1), label="col_start")
    c1 = data.draw(st.integers(c0 + 1, n), label="col_stop")
    rows, cols = slice(r0, r1), slice(c0, c1)
    direct = model.tile(x, rows, cols)
    d = pairwise_distance_block(x, rows, cols, metric=model.metric)
    np.testing.assert_array_equal(model.tile_from_distances(d, rows, cols), direct)
    # The nugget lands exactly on global-diagonal entries, even for
    # offset (row != col) slices that merely straddle the diagonal.
    plain = model(d)
    tiled = model.tile_from_distances(d, rows, cols)
    ridx = np.arange(r0, r1)[:, None]
    cidx = np.arange(c0, c1)[None, :]
    eq = ridx == cidx
    np.testing.assert_array_equal(tiled[~eq], plain[~eq])
    np.testing.assert_array_equal(tiled[eq], plain[eq] + model.nugget)


@given(model=models, seed=st.integers(0, 2**31 - 1), n=st.integers(2, 25), m=st.integers(1, 10))
def test_cross_covariance_matches_per_entry_evaluation(model, seed, n, m):
    x = cloud(seed, n)
    y = cloud(seed + 1, m)
    sigma12 = model(pairwise_distance(y, x, metric=model.metric))
    assert sigma12.shape == (m, n)
    for i in range(m):
        for j in range(n):
            r = float(np.linalg.norm(y[i] - x[j]))
            expected = float(model(np.array([r]))[0])
            # The expanded-square distance formula loses ~sqrt(eps) near
            # coincident points; the kernel is 1-Lipschitz-bounded in r
            # at these scales.
            assert abs(sigma12[i, j] - expected) < 1e-6 * max(1.0, model.variance)


@given(
    model=models,
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(4, 60),
    nb=st.integers(2, 17),
)
def test_tile_distance_cache_keys_every_block_correctly(model, seed, n, nb):
    x = cloud(seed, n)
    cache = TileDistanceCache(x, nb, metric=model.metric)
    grid = TileGrid(n, nb)
    gen = cache.generator(model)
    for i in range(grid.nt):
        for j in range(i + 1):
            rs, cs = grid.tile_slice(i), grid.tile_slice(j)
            direct_d = pairwise_distance_block(x, rs, cs, metric=model.metric)
            np.testing.assert_array_equal(cache.block(rs, cs), direct_d)
            np.testing.assert_array_equal(gen(rs, cs), model.tile(x, rs, cs))
    # Every distinct (rows, cols) pair got its own entry — a keying
    # collision would manifest as fewer stored blocks than requested.
    assert cache.n_blocks == grid.nt * (grid.nt + 1) // 2
    # Second sweep is all hits, still bit-identical.
    misses = cache.misses
    for i in range(grid.nt):
        for j in range(i + 1):
            rs, cs = grid.tile_slice(i), grid.tile_slice(j)
            np.testing.assert_array_equal(
                cache.block(rs, cs), pairwise_distance_block(x, rs, cs, metric=model.metric)
            )
    assert cache.misses == misses


@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(2, 30),
    sizes=st.lists(st.integers(1, 12), min_size=1, max_size=5),
)
@settings(max_examples=25)
def test_cross_distance_cache_keys_by_content(seed, n, sizes):
    x = cloud(seed, n)
    cache = CrossDistanceCache(x, max_entries=len(sizes) + 1)
    targets = [cloud(seed + 1 + k, m) for k, m in enumerate(sizes)]
    for t in targets:
        np.testing.assert_array_equal(cache.matrix(t), pairwise_distance(t, x))
    misses = cache.misses
    for t in targets:
        np.testing.assert_array_equal(cache.matrix(t), pairwise_distance(t, x))
    assert cache.misses == misses  # replays are pure hits
    # An equal-shape but different-content target set must not collide.
    other = targets[0] + 0.25
    np.testing.assert_array_equal(cache.matrix(other), pairwise_distance(other, x))
    assert cache.misses == misses + 1


@given(model=models, seed=st.integers(0, 2**31 - 1), n=st.integers(2, 30))
def test_matrix_from_distances_consistent_with_matrix(model, seed, n):
    x = cloud(seed, n)
    d = pairwise_distance(x, metric=model.metric)
    np.testing.assert_array_equal(model.matrix_from_distances(d), model.matrix(x))
