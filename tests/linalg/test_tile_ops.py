"""Direct unit tests for the dense and TLR codelets."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg as sla

from repro.exceptions import NotPositiveDefiniteError
from repro.linalg.compression import LowRank, svd_compress
from repro.linalg.tile_ops import gemm_codelet, potrf_codelet, syrk_codelet, trsm_codelet
from repro.linalg.tlr_ops import (
    tlr_gemm_codelet,
    tlr_potrf_codelet,
    tlr_syrk_codelet,
    tlr_trsm_codelet,
)


@pytest.fixture()
def spd_tile(rng):
    x = rng.random((24, 24))
    return x @ x.T + 24 * np.eye(24)


class TestDenseCodelets:
    def test_potrf_in_place_lower(self, spd_tile):
        expected = np.linalg.cholesky(spd_tile)
        tile = spd_tile.copy()
        potrf_codelet(tile)
        np.testing.assert_allclose(tile, expected, atol=1e-10)
        assert np.allclose(tile, np.tril(tile))

    def test_potrf_raises_on_indefinite(self):
        with pytest.raises(NotPositiveDefiniteError):
            potrf_codelet(-np.eye(4))

    def test_trsm_right_solve(self, spd_tile, rng):
        lkk = np.linalg.cholesky(spd_tile)
        a = rng.random((16, 24))
        expected = a @ np.linalg.inv(lkk).T
        tile = a.copy()
        trsm_codelet(lkk, tile)
        np.testing.assert_allclose(tile, expected, atol=1e-9)

    def test_syrk_update(self, rng):
        a = rng.random((12, 12))
        d = rng.random((12, 12))
        expected = d - a @ a.T
        out = d.copy()
        syrk_codelet(a, out)
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_gemm_update(self, rng):
        aik = rng.random((10, 8))
        ajk = rng.random((10, 8))
        aij = rng.random((10, 10))
        expected = aij - aik @ ajk.T
        out = aij.copy()
        gemm_codelet(aik, ajk, out)
        np.testing.assert_allclose(out, expected, atol=1e-12)


class TestTLRCodelets:
    def test_tlr_potrf_matches_dense(self, spd_tile):
        tile = spd_tile.copy()
        tlr_potrf_codelet(tile)
        np.testing.assert_allclose(tile, np.linalg.cholesky(spd_tile), atol=1e-10)

    def test_tlr_trsm_only_touches_v(self, spd_tile, rng):
        lkk = np.linalg.cholesky(spd_tile)
        dense = rng.random((24, 24))
        block = svd_compress(dense, 1e-12)
        u_before = block.u.copy()
        expected = block.to_dense() @ np.linalg.inv(lkk).T
        tlr_trsm_codelet(lkk, block)
        np.testing.assert_array_equal(block.u, u_before)  # U untouched
        np.testing.assert_allclose(block.to_dense(), expected, atol=1e-8)

    def test_tlr_trsm_rank_zero_noop(self, spd_tile):
        lkk = np.linalg.cholesky(spd_tile)
        z = LowRank(np.zeros((24, 0)), np.zeros((0, 24)))
        tlr_trsm_codelet(lkk, z)
        assert z.rank == 0

    def test_tlr_syrk_matches_dense_syrk(self, rng):
        dense = rng.random((20, 20)) * 0.1
        block = svd_compress(dense, 1e-13)
        d = rng.random((20, 20))
        expected = d - dense @ dense.T
        out = d.copy()
        tlr_syrk_codelet(block, out)
        np.testing.assert_allclose(out, expected, atol=1e-8)

    def test_tlr_syrk_rank_zero_noop(self, rng):
        z = LowRank(np.zeros((8, 0)), np.zeros((0, 8)))
        d = rng.random((8, 8))
        d0 = d.copy()
        tlr_syrk_codelet(z, d)
        np.testing.assert_array_equal(d, d0)

    def test_tlr_gemm_matches_dense_update(self, rng):
        def lowrank_of(mat):
            return svd_compress(mat, 1e-13)

        a_dense = rng.random((16, 16)) * 0.5
        ik_dense = rng.random((16, 16)) * 0.3
        jk_dense = rng.random((16, 16)) * 0.3
        aij = lowrank_of(a_dense)
        aik = lowrank_of(ik_dense)
        ajk = lowrank_of(jk_dense)
        expected = a_dense - ik_dense @ jk_dense.T
        tlr_gemm_codelet(aij, aik, ajk, acc=1e-12)
        np.testing.assert_allclose(aij.to_dense(), expected, atol=1e-7)

    def test_tlr_gemm_recompresses(self, rng):
        # A cancelling update must not inflate the stored rank.
        base = rng.random((16, 2)) @ rng.random((2, 16))
        aij = svd_compress(base, 1e-13)
        aik = svd_compress(base, 1e-13)
        identityish = svd_compress(np.eye(16), 1e-13)
        rank_before = aij.rank
        tlr_gemm_codelet(aij, aik, identityish, acc=1e-10)
        # A_ij - A_ik @ I^T = 0: the stored rank stays bounded by the
        # concatenated rank (relative truncation keeps noise directions
        # of a numerically-zero block) and the block itself vanishes.
        assert aij.rank <= 2 * rank_before
        assert np.linalg.norm(aij.to_dense()) < 1e-12

    def test_tlr_gemm_zero_operand_noop(self, rng):
        aij = svd_compress(rng.random((8, 8)), 1e-12)
        before = aij.to_dense()
        z = LowRank(np.zeros((8, 0)), np.zeros((0, 8)))
        tlr_gemm_codelet(aij, z, z, acc=1e-10)
        np.testing.assert_array_equal(aij.to_dense(), before)
