"""TraceContext: codecs, nesting, and contextvar activation."""

from __future__ import annotations

import pytest

from repro.telemetry import context as tctx


def test_new_trace_is_root():
    ctx = tctx.new_trace()
    assert ctx.parent_id is None
    assert len(ctx.trace_id) == 16
    assert len(ctx.span_id) == 12
    assert ctx.trace_id != tctx.new_trace().trace_id


def test_child_of_keeps_trace_and_parents():
    root = tctx.new_trace()
    child = tctx.child_of(root)
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id
    assert child.span_id != root.span_id


def test_activation_is_scoped():
    assert tctx.current() is None
    ctx = tctx.new_trace()
    with tctx.activate(ctx):
        assert tctx.current() is ctx
        inner = tctx.child_of(ctx)
        with tctx.activate(inner):
            assert tctx.current() is inner
        assert tctx.current() is ctx
    assert tctx.current() is None


def test_header_roundtrip():
    ctx = tctx.new_trace()
    parsed = tctx.from_header(tctx.to_header(ctx))
    assert parsed.trace_id == ctx.trace_id
    assert parsed.span_id == ctx.span_id


@pytest.mark.parametrize(
    "bad",
    [
        None,
        "",
        "no-colon",
        "a:b:c",
        "xyz!:deadbeef1234",  # non-hex trace id
        "deadbeefdeadbeef:GHIJKL123456",  # non-hex span id
        "ab:cd",  # too short
        "f" * 64 + ":" + "a" * 12,  # absurdly long trace id
    ],
)
def test_malformed_header_is_ignored(bad):
    assert tctx.from_header(bad) is None


def test_wire_roundtrip_and_validation():
    ctx = tctx.new_trace()
    parsed = tctx.from_wire(tctx.to_wire(ctx))
    assert parsed.trace_id == ctx.trace_id
    assert parsed.span_id == ctx.span_id
    assert tctx.from_wire(None) is None
    assert tctx.from_wire(("one",)) is None
    assert tctx.from_wire((1, 2)) is None
    assert tctx.from_wire(("nothex!", "deadbeef1234")) is None
