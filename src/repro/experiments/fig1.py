"""Figure 1 — TLR representation of a covariance matrix.

The paper's Figure 1 illustrates the TLR format: dense diagonal tiles,
off-diagonal tiles stored as rank-k factors with tile-dependent ranks.
The text reproduction reports, per accuracy threshold, the tile-rank
distribution and the memory footprint against dense storage — the
quantitative content of the figure.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..data.morton import sort_locations
from ..data.synthetic import generate_irregular_grid
from ..kernels.covariance import MaternCovariance
from ..linalg.tlr_matrix import TLRMatrix
from .common import ResultTable

__all__ = ["run_fig1"]


def run_fig1(
    *,
    n: int = 1600,
    nb: int = 200,
    accuracies: Sequence[float] = (1e-5, 1e-7, 1e-9, 1e-12),
    theta: Sequence[float] = (1.0, 0.1, 0.5),
    seed: int = 0,
) -> ResultTable:
    """Compress one Matérn covariance at several accuracies; tabulate ranks.

    Returns a table with per-accuracy max/mean rank, compression ratio,
    and memory footprints.
    """
    locs = generate_irregular_grid(n, seed=seed)
    locs, _, _ = sort_locations(locs)
    model = MaternCovariance(*theta)
    table = ResultTable(
        title=f"Figure 1 — TLR representation, Matérn theta={tuple(theta)}, n={n}, nb={nb}",
        headers=[
            "accuracy",
            "max rank",
            "mean rank",
            "rank@d=1",
            f"rank@d={max(1, n // nb - 1)}",
            "TLR MB",
            "dense MB",
            "ratio",
        ],
    )
    for acc in accuracies:
        tlr = TLRMatrix.from_generator(
            n, nb, lambda rs, cs: model.tile(locs, rs, cs), acc=acc
        )
        rm = tlr.rank_matrix()
        nt = tlr.nt
        near = int(np.mean([rm[i, i - 1] for i in range(1, nt)]))
        far = int(rm[nt - 1, 0])
        table.add_row(
            f"{acc:.0e}",
            tlr.max_rank(),
            round(tlr.mean_rank(), 1),
            near,
            far,
            round(tlr.nbytes / 1e6, 3),
            round(tlr.dense_nbytes() / 1e6, 3),
            round(tlr.compression_ratio(), 2),
        )
    table.add_note(
        "ranks fall with tile separation and rise with accuracy - the variable-rank "
        "structure sketched in the paper's Figure 1"
    )
    return table
