"""TLR Cholesky factorization (paper §V; HiCMA's core operation).

Right-looking lower Cholesky over a :class:`TLRMatrix`: dense POTRF on
diagonal tiles, TRSM on the V factors of the panel, dense SYRK updates of
diagonal tiles from low-rank panels, and low-rank GEMM updates with
QR+SVD recompression for the trailing off-diagonal tiles.

Arithmetic complexity drops from ``O(n^3)`` to roughly
``O(n^2 k / nb + n k^2 nt)`` with per-tile ranks ``k << nb``, and the
factor stays in TLR form, so memory follows the compressed footprint —
the two effects behind the paper's speedups and its ability to run 2M
problems.

As with the dense tile variant, the factorization runs either serially
or through the task runtime with the same codelets and the standard
panel-first priorities.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..exceptions import NotPositiveDefiniteError, ShapeError
from ..runtime import AccessMode, Runtime
from .tlr_matrix import TLRMatrix
from .tlr_ops import (
    tlr_gemm_codelet,
    tlr_potrf_codelet,
    tlr_syrk_codelet,
    tlr_trsm_codelet,
)

__all__ = ["tlr_cholesky", "logdet_from_tlr_factor"]


def _serial_tlr_cholesky(a: TLRMatrix, acc: float, rule: Optional[str]) -> None:
    nt = a.nt
    for k in range(nt):
        tlr_potrf_codelet(a.diag[k])
        lkk = a.diag[k]
        for i in range(k + 1, nt):
            tlr_trsm_codelet(lkk, a.low[(i, k)])
        for i in range(k + 1, nt):
            aik = a.low[(i, k)]
            tlr_syrk_codelet(aik, a.diag[i])
            for j in range(k + 1, i):
                tlr_gemm_codelet(a.low[(i, j)], aik, a.low[(j, k)], acc, rule=rule)


def _parallel_tlr_cholesky(
    a: TLRMatrix,
    acc: float,
    rule: Optional[str],
    runtime: Runtime,
    handles: Optional[Tuple[Dict[int, object], Dict[Tuple[int, int], object]]] = None,
) -> None:
    nt = a.nt
    if handles is not None:
        dh, lh = handles
    else:
        dh = {k: runtime.register(a.diag[k], name=f"D[{k}]") for k in range(nt)}
        lh = {
            key: runtime.register(lr, name=f"L[{key[0]},{key[1]}]")
            for key, lr in a.low.items()
        }
    R, RW = AccessMode.READ, AccessMode.READWRITE
    for k in range(nt):
        base = nt - k
        runtime.insert_task(
            tlr_potrf_codelet, [(dh[k], RW)], name=f"potrf({k})", priority=3 * base
        )
        for i in range(k + 1, nt):
            runtime.insert_task(
                tlr_trsm_codelet,
                [(dh[k], R), (lh[(i, k)], RW)],
                name=f"trsm({i},{k})",
                priority=2 * base,
            )
        for i in range(k + 1, nt):
            runtime.insert_task(
                tlr_syrk_codelet,
                [(lh[(i, k)], R), (dh[i], RW)],
                name=f"syrk({i},{k})",
                priority=base,
            )
            for j in range(k + 1, i):
                runtime.insert_task(
                    tlr_gemm_codelet,
                    [(lh[(i, j)], RW), (lh[(i, k)], R), (lh[(j, k)], R)],
                    args=(acc,),
                    kwargs={"rule": rule},
                    name=f"gemm({i},{j},{k})",
                    priority=base,
                )
    try:
        runtime.wait_all()
    finally:
        # Drop the completed task graph so long-lived runtimes (one per MLE
        # fit, many factorizations) do not accumulate bookkeeping.
        runtime.tracker.reset()


def tlr_cholesky(
    a: TLRMatrix,
    acc: Optional[float] = None,
    *,
    rule: Optional[str] = None,
    runtime: Optional[Runtime] = None,
    handles: Optional[Tuple[Dict[int, object], Dict[Tuple[int, int], object]]] = None,
) -> TLRMatrix:
    """Factor a symmetric TLR matrix in place: ``A = L L^T`` in TLR form.

    Parameters
    ----------
    a:
        SPD matrix in TLR format; overwritten with the factor (dense
        lower-triangular diagonal tiles, low-rank off-diagonal tiles).
    acc:
        Recompression accuracy for trailing updates; defaults to the
        matrix's construction accuracy ``a.acc`` (the paper uses one
        threshold end to end).
    rule:
        Truncation rule override (``"relative"`` / ``"absolute"``).
    runtime:
        Optional task runtime for parallel execution.
    handles:
        Pre-registered ``(diag_handles, low_handles)`` maps for ``a``'s
        tiles (requires ``runtime``). Pass the handles returned by
        :func:`~repro.linalg.generation.insert_tlr_generation_tasks` to
        fuse generation+compression into this factorization's task graph.

    Returns
    -------
    The same object, now holding the TLR Cholesky factor.
    """
    acc_val = a.acc if acc is None else float(acc)
    if runtime is None:
        if handles is not None:
            raise ShapeError("handles require a runtime")
        _serial_tlr_cholesky(a, acc_val, rule)
    else:
        _parallel_tlr_cholesky(a, acc_val, rule, runtime, handles)
    return a


def logdet_from_tlr_factor(factor: TLRMatrix) -> float:
    """``log |A|`` from a TLR Cholesky factor's dense diagonal tiles.

    Raises
    ------
    NotPositiveDefiniteError
        If any diagonal entry of the factor is not strictly positive —
        taking ``log`` would otherwise silently propagate NaN into the
        log-likelihood instead of triggering the evaluator's penalty
        path.
    """
    total = 0.0
    for k in range(factor.nt):
        diag = np.diagonal(factor.diag[k])
        if not np.all(diag > 0.0):
            raise NotPositiveDefiniteError(
                f"TLR Cholesky factor has a non-positive diagonal in tile ({k},{k})"
            )
        total += float(np.sum(np.log(diag)))
    return 2.0 * total
