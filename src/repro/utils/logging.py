"""Lightweight logging configured from the ``REPRO_LOG`` environment variable.

Set ``REPRO_LOG=DEBUG`` (or INFO/WARNING) to see runtime scheduling and MLE
iteration traces without configuring the stdlib logging tree yourself.

Log lines carry the active telemetry trace id (``[-]`` when none), so a
slow request's logs and its ``/v1/trace/<id>`` span tree correlate by
one grep.
"""

from __future__ import annotations

import logging
import os

from ..telemetry import context as _trace_context

__all__ = ["get_logger"]

_CONFIGURED = False


def _level_names() -> dict:
    # getLevelNamesMapping is 3.11+; fall back to the stable public names.
    getter = getattr(logging, "getLevelNamesMapping", None)
    if getter is not None:
        return getter()
    return {
        "CRITICAL": logging.CRITICAL,
        "FATAL": logging.FATAL,
        "ERROR": logging.ERROR,
        "WARN": logging.WARNING,
        "WARNING": logging.WARNING,
        "INFO": logging.INFO,
        "DEBUG": logging.DEBUG,
        "NOTSET": logging.NOTSET,
    }


def _parse_level(level_name: str) -> int:
    """Resolve a level *name* strictly against the logging level table.

    A plain ``getattr(logging, name)`` would resolve *any* module
    attribute — ``REPRO_LOG=raiseExceptions`` yields ``True`` (level 1,
    everything on) and ``REPRO_LOG=os`` a module object — so validate
    against the real level mapping and fall back loudly instead.
    """
    names = _level_names()
    level = names.get(level_name.upper())
    if level is None:
        print(
            f"repro: ignoring invalid REPRO_LOG={level_name!r} "
            f"(expected one of {sorted(names)}); using WARNING",
            flush=True,
        )
        return logging.WARNING
    return level


class _TraceIdFilter(logging.Filter):
    """Stamp every record with the active telemetry trace id (or ``-``)."""

    def filter(self, record: logging.LogRecord) -> bool:
        ctx = _trace_context.current()
        record.trace_id = ctx.trace_id if ctx is not None else "-"
        return True


def _configure_root() -> None:
    global _CONFIGURED
    if _CONFIGURED:
        return
    level = _parse_level(os.environ.get("REPRO_LOG", "WARNING"))
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter(
            "%(asctime)s %(name)s %(levelname)s [%(trace_id)s]: %(message)s",
            "%H:%M:%S",
        )
    )
    handler.addFilter(_TraceIdFilter())
    root = logging.getLogger("repro")
    root.setLevel(level)
    if not root.handlers:
        root.addHandler(handler)
    root.propagate = False
    _CONFIGURED = True


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    Parameters
    ----------
    name:
        Dotted suffix, e.g. ``"runtime"`` yields logger ``repro.runtime``.
    """
    _configure_root()
    return logging.getLogger(f"repro.{name}")
