"""Binary + streaming wire codec for the serving HTTP transport.

Realistic kriging requests carry 1e3–1e6 float64 targets. Encoding
them as JSON lists costs ~19 text bytes per float plus a ``repr`` pass
on both sides — the dominant wire and encode/decode cost of the HTTP
path (the pipe path between router and worker was always pickle). This
module is the shared codec that fixes it: raw little-endian float64
frames, streamed, decoded incrementally into one preallocated array.

Wire format (version 1)
-----------------------
A *message* is a sequence of length-prefixed frames over any byte
stream (an HTTP body, a socket, a file). Every frame starts with a
fixed 20-byte head::

    offset  size  field
    0       4     magic  b"RNPY"
    4       1     wire version (currently 1)
    5       1     frame kind: b"M" meta, b"A" array, b"E" end
    6       2     reserved (0)
    8       4     header length H, uint32 little-endian
    12      8     payload length P, uint64 little-endian
    20      H     header: UTF-8 JSON object (empty when H == 0)
    20+H    P     payload: raw bytes

and a message is exactly::

    META frame    H == 0; payload is the message's JSON meta object
                  (model id, flags, ... — everything scalar).
    ARRAY frame*  zero or more; header is ``{"name", "dtype", "shape",
                  "order"[, "encoding"]}``; payload is the array's raw
                  little-endian bytes in its own memory order
                  (npy-style, headerless): ``order`` is ``"C"``
                  (default when absent) or ``"F"`` — layout is
                  preserved because downstream BLAS picks code paths
                  by it, and a transpose-copy would shift results by
                  an ulp. ``encoding`` is ``"raw"`` (default when
                  absent) or ``"deflate"`` — a zlib-compressed payload
                  (P is then the *compressed* length; the decompressed
                  length is implied by dtype and shape). Encoders
                  apply deflate only when a sample probe shows the
                  payload actually shrinks — structured map-grid
                  coordinates compress ~6x, while random mantissas
                  ship raw rather than paying for nothing. Lossless
                  either way: bit-exactness is unconditional.
                  Supported dtypes: ``"<f8"``, ``"<i8"``.
    END frame     H == 0, P == 0. Closes the message: a reader that
                  hits end-of-stream before END reports a truncated
                  stream (a connection dropped mid-transfer) as a
                  typed :class:`~repro.exceptions.WireFormatError`
                  instead of silently returning partial arrays.

Because every float64 crosses as its 8 raw bytes, binary transport is
**bit-exact** by construction — including NaN/inf payloads that strict
JSON cannot represent at all — and ~2.7x smaller than JSON's
repr-encoded floats (8 bytes vs ~21 text bytes per value). Structured
payloads — above all regular map-grid target coordinates, the bulk
kriging-output workload — deflate on top of that to 10x+ smaller than
JSON; incompressible random mantissas ship raw (see ``encoding``
below).

Negotiation
-----------
The HTTP surface stays JSON by default (the debug surface). A request
whose ``Content-Type`` is :data:`CONTENT_TYPE`
(``application/x-repro-npy``) carries a binary message body; a
response is binary iff the request's ``Accept`` header includes
:data:`CONTENT_TYPE` (binary responses use HTTP/1.1 chunked transfer
encoding and are streamed frame by frame). Error responses are always
JSON, whatever was negotiated, so one error decoder serves both
transports. ``POST /v1/predict`` and ``POST /v1/models/<id>``
(register-by-upload) accept binary bodies.

Versioning rules
----------------
The version byte is bumped on any incompatible layout change; readers
reject a mismatched version with :class:`WireFormatError` rather than
guessing. Within a version, *new optional keys* may appear in meta and
array headers — readers must ignore keys they do not know. ``order``
and ``encoding`` are NOT such keys: they change how the payload bytes
are interpreted, so they are part of the version-1 spec and a reader
that meets an ``encoding`` value it does not support must reject the
frame, not skip the key. The ``reserved`` head bytes must be written
as zero and ignored on read.

Streaming
---------
:func:`iter_message` yields the encoded message as a sequence of
bounded chunks without ever concatenating an array payload — large
arrays are yielded as memoryview slices of their own buffers.
:func:`read_message` is the mirror image: it allocates each array once
from its header and reads the payload incrementally into that buffer,
so a million-target request is never materialized twice. Both loops
honor an optional :class:`~repro.resilience.policy.Deadline` (checked
per chunk) and the reader enforces an optional ``max_bytes`` budget
(:class:`~repro.exceptions.PayloadTooLargeError`) *before* allocating
from untrusted declared lengths.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..exceptions import PayloadTooLargeError, WireFormatError
from ..resilience.faults import fault_point
from ..resilience.policy import Deadline
from ..telemetry import spans as _telemetry

__all__ = [
    "CONTENT_TYPE",
    "WIRE_VERSION",
    "MAGIC",
    "encode_message",
    "encoded_length",
    "iter_message",
    "plan_message",
    "read_message",
    "write_chunked",
    "BoundedReader",
    "ChunkedReader",
    "parse_http_head",
]

#: MIME type negotiated on ``Content-Type`` (request) / ``Accept`` (response).
CONTENT_TYPE = "application/x-repro-npy"

MAGIC = b"RNPY"
WIRE_VERSION = 1

_KIND_META = ord("M")
_KIND_ARRAY = ord("A")
_KIND_END = ord("E")

#: magic, version, kind, reserved, header_len (u32), payload_len (u64).
_HEAD = struct.Struct("<4sBBHIQ")

#: Streaming granularity: large payloads cross in slices of this size.
CHUNK_SIZE = 256 * 1024

#: Sanity cap on a frame's JSON header — headers carry names and shapes,
#: never data, so anything bigger is a malformed (or hostile) stream.
_MAX_HEADER = 1 << 20

#: dtypes allowed on the wire (little-endian, matching the format spec).
_WIRE_DTYPES = ("<f8", "<i8")

_MAX_LINE = 65536  # HTTP status/header/chunk-size line bound

#: Payloads below this skip the compression probe outright.
_COMPRESS_MIN = 1024

#: Bytes of payload the compression probe samples.
_COMPRESS_SAMPLE = 65536

#: The probe sample must deflate below this fraction for the payload to
#: ship compressed — random float64 mantissas land near 0.95 and ship
#: raw; structured map-grid coordinates land near 0.2 and compress ~6x.
_COMPRESS_THRESHOLD = 0.75

_COMPRESS_LEVEL = 1  # speed over ratio: structured payloads crush anyway


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


def _wire_array(name: str, value: Any) -> Tuple[np.ndarray, str, str]:
    """Coerce ``value`` to a little-endian wire array + dtype tag + order.

    Memory order is preserved on the wire (npy-style): a
    Fortran-ordered array — e.g. a LAPACK Cholesky factor — crosses as
    its own bytes under ``order: "F"`` rather than being transposed
    into C order. Bit-exactness is not just about values: downstream
    BLAS picks its code path by memory layout, so changing the order
    would change results by an ulp.
    """
    arr = np.asarray(value)
    if arr.dtype.kind in "iu" and arr.dtype != np.dtype("<i8"):
        arr = arr.astype("<i8")
    elif arr.dtype.kind != "i" and arr.dtype != np.dtype("<f8"):
        arr = arr.astype("<f8")
    tag = "<i8" if arr.dtype.kind == "i" else "<f8"
    # astype above already handled byte order for converted arrays; a
    # pass-through big-endian f8/i8 still needs the swap:
    if arr.dtype.byteorder == ">":
        arr = arr.astype(tag)
    if arr.ndim >= 2 and arr.flags["F_CONTIGUOUS"] and not arr.flags["C_CONTIGUOUS"]:
        return arr, tag, "F"
    if not arr.flags["C_CONTIGUOUS"]:
        arr = np.ascontiguousarray(arr)  # preserves 0-d (ascontiguousarray
        # unconditionally would promote scalars to shape (1,))
    return arr, tag, "C"


def _byte_view(arr: np.ndarray, order: str) -> memoryview:
    """Flat writable byte view of ``arr``'s buffer (``arr.T`` of an
    F-ordered array is C-contiguous, exposing the same memory).

    ``memoryview.cast`` rejects 0-d and zero-size views, so the array
    is first flattened to 1-D (a view — the base is contiguous by
    construction) and the empty case short-circuits.
    """
    if arr.size == 0:
        return memoryview(bytearray(0))
    base = arr.T if order == "F" else arr
    return memoryview(base.reshape(-1)).cast("B")


def _frame_head(kind: int, header: bytes, payload_len: int) -> bytes:
    return _HEAD.pack(MAGIC, WIRE_VERSION, kind, 0, len(header), payload_len)


def _meta_bytes(meta: dict) -> bytes:
    try:
        return json.dumps(meta, allow_nan=False).encode("utf-8")
    except ValueError:
        raise WireFormatError(
            "message meta contains non-finite floats; meta is strict JSON "
            "— non-finite values belong in array payloads"
        ) from None


def _maybe_deflate(view: memoryview) -> Optional[bytes]:
    """Deflate ``view`` if a sample probe says it will actually shrink.

    Returns the compressed payload, or ``None`` to ship raw. The probe
    costs one small-sample compression on incompressible data, so raw
    payloads pay ~nothing for the option.
    """
    if len(view) < _COMPRESS_MIN:
        return None
    sample = bytes(view[:_COMPRESS_SAMPLE])
    if len(zlib.compress(sample, _COMPRESS_LEVEL)) >= _COMPRESS_THRESHOLD * len(sample):
        return None
    compressed = zlib.compress(view, _COMPRESS_LEVEL)
    return compressed if len(compressed) < len(view) else None


class _MessagePlan:
    """One encoded message, planned once: frame heads + headers built,
    compression decided (and its buffered output held), source-array
    payloads kept as memoryviews. ``chunks()`` can be called repeatedly
    — e.g. to rebuild a streamed HTTP body for a retry — without
    re-paying the analysis.
    """

    __slots__ = ("_pieces", "length")

    def __init__(self, pieces: List[Union[bytes, memoryview]]) -> None:
        self._pieces = pieces
        self.length = sum(len(p) for p in pieces)

    def chunks(
        self,
        chunk_size: int = CHUNK_SIZE,
        deadline: Optional[Deadline] = None,
    ) -> Iterator[bytes]:
        """Yield the message in bounded chunks (one deadline check per
        chunk). Large payloads cross as memoryview slices — nothing is
        concatenated, so peak extra memory is one ``chunk_size``."""
        for piece in self._pieces:
            if len(piece) <= chunk_size:
                if deadline is not None:
                    deadline.check("wire encode")
                yield piece
                continue
            view = memoryview(piece)
            for start in range(0, len(view), chunk_size):
                if deadline is not None:
                    deadline.check("wire encode")
                yield view[start : start + chunk_size]


def plan_message(
    meta: dict,
    arrays: Optional[Dict[str, Any]] = None,
    *,
    compress: bool = True,
) -> _MessagePlan:
    """Plan one message: returns an object exposing the exact encoded
    ``length`` (so a streaming sender can set ``Content-Length``
    without buffering the payload) and a reusable ``chunks()``
    iterator. The single place the compression decision is made, so
    length and body can never disagree.
    """
    # The encode span covers planning: array staging and the (probed)
    # compression pass — the CPU cost of the codec. Chunk streaming
    # afterwards is I/O-bound and accounted by the caller's span.
    with _telemetry.span("wire.encode", arrays=len(arrays or ())):
        pieces: List[Union[bytes, memoryview]] = []
        payload = _meta_bytes(meta)
        pieces.append(_frame_head(_KIND_META, b"", len(payload)) + payload)
        for name, value in (arrays or {}).items():
            arr, tag, order = _wire_array(name, value)
            view = _byte_view(arr, order)
            fields = {"name": str(name), "dtype": tag, "shape": list(arr.shape),
                      "order": order}
            body: Union[bytes, memoryview] = view
            if compress:
                deflated = _maybe_deflate(view)
                if deflated is not None:
                    fields["encoding"] = "deflate"
                    body = deflated
            header = json.dumps(fields).encode("utf-8")
            pieces.append(_frame_head(_KIND_ARRAY, header, len(body)) + header)
            pieces.append(body)
        pieces.append(_frame_head(_KIND_END, b"", 0))
        return _MessagePlan(pieces)


def iter_message(
    meta: dict,
    arrays: Optional[Dict[str, Any]] = None,
    *,
    chunk_size: int = CHUNK_SIZE,
    deadline: Optional[Deadline] = None,
    compress: bool = True,
) -> Iterator[bytes]:
    """Yield one encoded message as a stream of bounded chunks.

    One-shot convenience over :func:`plan_message` — callers that also
    need the length (to set ``Content-Length``) should plan once and
    use the plan's ``chunks()`` instead of paying the compression
    analysis twice.
    """
    return plan_message(meta, arrays, compress=compress).chunks(
        chunk_size, deadline
    )


def encode_message(
    meta: dict,
    arrays: Optional[Dict[str, Any]] = None,
    *,
    compress: bool = True,
) -> bytes:
    """The message as one bytes object (tests, small admin payloads)."""
    return b"".join(bytes(c) for c in iter_message(meta, arrays, compress=compress))


def encoded_length(
    meta: dict,
    arrays: Optional[Dict[str, Any]] = None,
    *,
    compress: bool = True,
) -> int:
    """Exact byte length :func:`iter_message` will produce."""
    return plan_message(meta, arrays, compress=compress).length


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


class _Budget:
    """Cumulative read budget guarding untrusted declared lengths."""

    __slots__ = ("limit", "used")

    def __init__(self, limit: Optional[int]) -> None:
        self.limit = limit
        self.used = 0

    def charge(self, nbytes: int, what: str) -> None:
        self.used += int(nbytes)
        if self.limit is not None and self.used > self.limit:
            raise PayloadTooLargeError(
                f"binary message exceeds the {self.limit}-byte cap while "
                f"reading {what} (serving_max_body governs the server side)"
            )


def _read_exact(
    read: Callable[[int], bytes],
    view: memoryview,
    budget: _Budget,
    what: str,
    deadline: Optional[Deadline],
    chunk_size: int,
) -> None:
    """Fill ``view`` from ``read`` in bounded chunks (deadline-checked)."""
    offset, total = 0, len(view)
    while offset < total:
        if deadline is not None:
            deadline.check("wire decode")
        chunk = read(min(chunk_size, total - offset))
        if not chunk:
            raise WireFormatError(
                f"stream truncated while reading {what}: got {offset} of "
                f"{total} bytes (connection dropped mid-stream?)"
            )
        view[offset : offset + len(chunk)] = chunk
        offset += len(chunk)
    budget.charge(total, what)


def _inflate_into(
    read: Callable[[int], bytes],
    view: memoryview,
    payload_len: int,
    budget: _Budget,
    what: str,
    deadline: Optional[Deadline],
    chunk_size: int,
) -> None:
    """Stream-decompress a deflate payload of ``payload_len`` compressed
    bytes into ``view``, never letting the inflater produce more than
    the declared raw size (a decompression bomb dies at its first
    excess byte, not after an allocation)."""
    decomp = zlib.decompressobj()
    filled, total = 0, len(view)
    remaining = payload_len
    pending = b""
    while True:
        if pending:
            chunk, pending = pending, b""
        elif remaining:
            if deadline is not None:
                deadline.check("wire decode")
            chunk = read(min(chunk_size, remaining))
            if not chunk:
                raise WireFormatError(
                    f"stream truncated while reading {what}: got "
                    f"{payload_len - remaining} of {payload_len} compressed "
                    "bytes (connection dropped mid-stream?)"
                )
            remaining -= len(chunk)
            budget.charge(len(chunk), what)
        else:
            break
        cap = total - filled
        out = decomp.decompress(chunk, cap if cap > 0 else 1)
        if len(out) > cap:
            raise WireFormatError(
                f"{what} inflates past its declared {total}-byte size"
            )
        view[filled : filled + len(out)] = out
        filled += len(out)
        pending = decomp.unconsumed_tail
    if decomp.flush():
        raise WireFormatError(
            f"{what} inflates past its declared {total}-byte size"
        )
    if filled != total or not decomp.eof:
        raise WireFormatError(
            f"{what} inflated to {filled} of its declared {total} bytes "
            "(corrupt or truncated deflate stream)"
        )
    if decomp.unused_data:
        # The deflate stream ended before payload_len compressed bytes
        # were consumed; the remainder landed in unused_data. Trailing
        # bytes mean corruption — never decode them as a valid frame.
        raise WireFormatError(
            f"{what} carries {len(decomp.unused_data)} trailing bytes "
            f"after the end of its deflate stream (corrupt payload)"
        )


def read_message(
    read: Callable[[int], bytes],
    *,
    max_bytes: Optional[int] = None,
    deadline: Optional[Deadline] = None,
    chunk_size: int = CHUNK_SIZE,
) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Decode one message from a ``read(n) -> bytes`` stream.

    Each array is allocated exactly once from its header and filled
    incrementally — the "never materialized twice" half of the
    transport contract. Declared lengths are charged against
    ``max_bytes`` *before* allocation, so a hostile header cannot make
    the reader allocate unbounded memory; ``deadline`` is checked per
    chunk so a stalled peer cannot pin the reader past its budget.

    Returns ``(meta, arrays)``. Raises :class:`WireFormatError` for
    bad magic/version/kind, malformed headers, dtype/shape mismatches,
    and streams truncated before the END frame.
    """
    with _telemetry.span("wire.decode"):
        return _read_message_inner(read, max_bytes, deadline, chunk_size)


def _read_message_inner(
    read: Callable[[int], bytes],
    max_bytes: Optional[int],
    deadline: Optional[Deadline],
    chunk_size: int,
) -> Tuple[dict, Dict[str, np.ndarray]]:
    budget = _Budget(max_bytes)
    meta: Optional[dict] = None
    arrays: Dict[str, np.ndarray] = {}
    head_buf = bytearray(_HEAD.size)
    while True:
        _read_exact(read, memoryview(head_buf), budget, "frame head", deadline, chunk_size)
        magic, version, kind, _reserved, header_len, payload_len = _HEAD.unpack(
            bytes(head_buf)
        )
        if magic != MAGIC:
            raise WireFormatError(
                f"bad frame magic {bytes(magic)!r} (want {MAGIC!r}); "
                "not a binary transport stream"
            )
        if version != WIRE_VERSION:
            raise WireFormatError(
                f"unsupported wire version {version} (this build speaks "
                f"{WIRE_VERSION}); upgrade one side or fall back to JSON"
            )
        if header_len > _MAX_HEADER:
            raise WireFormatError(
                f"frame header of {header_len} bytes exceeds the "
                f"{_MAX_HEADER}-byte sanity cap"
            )
        budget.charge(header_len + payload_len, "declared frame")
        budget.used -= header_len + payload_len  # charged again as it is read
        header: dict = {}
        if header_len:
            raw = bytearray(header_len)
            _read_exact(read, memoryview(raw), budget, "frame header", deadline, chunk_size)
            try:
                header = json.loads(bytes(raw))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise WireFormatError(f"frame header is not valid JSON: {exc}") from None
        if kind == _KIND_END:
            if payload_len:
                raise WireFormatError("END frame must have an empty payload")
            if meta is None:
                raise WireFormatError("message ended before its META frame")
            return meta, arrays
        if kind == _KIND_META:
            if meta is not None:
                raise WireFormatError("message carries more than one META frame")
            raw = bytearray(payload_len)
            _read_exact(read, memoryview(raw), budget, "meta payload", deadline, chunk_size)
            try:
                meta = json.loads(bytes(raw))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise WireFormatError(f"meta payload is not valid JSON: {exc}") from None
            if not isinstance(meta, dict):
                raise WireFormatError(
                    f"meta payload must be a JSON object, got {type(meta).__name__}"
                )
            continue
        if kind != _KIND_ARRAY:
            raise WireFormatError(f"unknown frame kind {kind:#x}")
        if meta is None:
            raise WireFormatError("ARRAY frame arrived before the META frame")
        try:
            name = str(header["name"])
            dtype = str(header["dtype"])
            shape = tuple(int(s) for s in header["shape"])
            order = str(header.get("order", "C"))
            encoding = str(header.get("encoding", "raw"))
        except (KeyError, TypeError, ValueError) as exc:
            raise WireFormatError(f"malformed array header {header!r}: {exc}") from None
        if dtype not in _WIRE_DTYPES:
            raise WireFormatError(
                f"unsupported wire dtype {dtype!r} (supported: {_WIRE_DTYPES})"
            )
        if order not in ("C", "F"):
            raise WireFormatError(f"unsupported array order {order!r} (want C or F)")
        if encoding not in ("raw", "deflate"):
            raise WireFormatError(
                f"unsupported payload encoding {encoding!r} (want raw or deflate)"
            )
        if any(s < 0 for s in shape):
            raise WireFormatError(f"array {name!r} declares a negative shape {shape}")
        expected = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        if encoding == "raw" and expected != payload_len:
            raise WireFormatError(
                f"array {name!r} declares shape {shape} ({expected} bytes) "
                f"but a {payload_len}-byte payload"
            )
        if name in arrays:
            raise WireFormatError(f"duplicate array {name!r} in one message")
        if encoding == "deflate":
            # Charge the *decompressed* size up front: a tiny compressed
            # payload must not buy a giant allocation past the cap.
            budget.charge(expected, f"array {name!r} (decompressed)")
        # One allocation, filled in place: the preallocated-decode path.
        arr = np.empty(shape, dtype=np.dtype(dtype), order=order)
        if encoding == "deflate":
            _inflate_into(
                read, _byte_view(arr, order), payload_len, budget,
                f"array {name!r}", deadline, chunk_size,
            )
        elif payload_len:
            _read_exact(
                read, _byte_view(arr, order), budget, f"array {name!r}",
                deadline, chunk_size,
            )
        arrays[name] = arr


# ---------------------------------------------------------------------------
# HTTP plumbing shared by the streaming server responses and the
# pipelining client (which parses responses off a raw socket).
# ---------------------------------------------------------------------------


def write_chunked(
    wfile,
    chunks: Iterator[bytes],
    *,
    deadline: Optional[Deadline] = None,
) -> None:
    """Write ``chunks`` as an HTTP/1.1 chunked-encoded body.

    The server's streamed-response loop: each codec chunk becomes one
    HTTP chunk, the deadline is re-checked per chunk (a slow-reading
    client cannot pin a handler thread past the request's budget), and
    ``wire.stream`` is a fault-injection site so chaos tests can drop
    the connection mid-response deterministically.
    """
    for chunk in chunks:
        if not chunk:
            continue
        fault_point("wire.stream")
        if deadline is not None:
            deadline.check("response stream")
        wfile.write(b"%x\r\n" % len(chunk))
        wfile.write(chunk)
        wfile.write(b"\r\n")
    wfile.write(b"0\r\n\r\n")


class BoundedReader:
    """``read(n)`` over exactly ``length`` bytes of an underlying stream.

    Bounds a request-body read by its ``Content-Length`` so a codec bug
    can never read into the next pipelined request on the connection.
    """

    __slots__ = ("_fp", "remaining")

    def __init__(self, fp, length: int) -> None:
        self._fp = fp
        self.remaining = int(length)

    def read(self, n: int = -1) -> bytes:
        if self.remaining <= 0:
            return b""
        if n < 0 or n > self.remaining:
            n = self.remaining
        data = self._fp.read(n)
        self.remaining -= len(data)
        return data

    def drain(self) -> None:
        """Consume any unread remainder (keeps keep-alive framing sane)."""
        while self.read(CHUNK_SIZE):
            pass


class ChunkedReader:
    """``read(n)`` across HTTP/1.1 chunked-encoding boundaries.

    The pipelining client's body reader: it decodes the chunk framing
    of one response off a shared buffered socket reader and stops at
    the terminal chunk, leaving the stream positioned at the next
    pipelined response.
    """

    __slots__ = ("_fp", "_remaining", "_eof")

    def __init__(self, fp) -> None:
        self._fp = fp
        self._remaining = 0
        self._eof = False

    def _readline(self, what: str) -> bytes:
        """One framing line, rejecting truncation and over-long lines.

        ``readline(_MAX_LINE)`` silently truncates an over-long line,
        which would make its remainder parse as the *next* line —
        so a line that hits the cap without a terminating newline is a
        wire error, as is EOF mid-line (connection dropped).
        """
        line = self._fp.readline(_MAX_LINE)
        if not line:
            raise WireFormatError(f"chunked stream truncated at {what}")
        if not line.endswith(b"\n"):
            if len(line) >= _MAX_LINE:
                raise WireFormatError(
                    f"{what} exceeds the {_MAX_LINE}-byte line cap"
                )
            raise WireFormatError(f"chunked stream truncated at {what}")
        return line

    def _next_chunk(self) -> None:
        line = self._readline("a chunk-size line")
        try:
            size = int(line.split(b";", 1)[0].strip() or b"0", 16)
        except ValueError:
            raise WireFormatError(f"malformed chunk-size line {line!r}") from None
        if size == 0:
            while True:  # consume optional trailers up to the blank line
                # EOF here is truncation, not completion: the terminal
                # CRLF after the 0-size chunk has not arrived yet.
                if self._readline("a trailer line") in (b"\r\n", b"\n"):
                    break
            self._eof = True
            return
        self._remaining = size

    def read(self, n: int) -> bytes:
        if self._eof:
            return b""
        if self._remaining == 0:
            self._next_chunk()
            if self._eof:
                return b""
        take = min(int(n), self._remaining)
        data = self._fp.read(take)
        if len(data) < take:
            raise WireFormatError(
                f"chunked stream truncated mid-chunk ({len(data)} of {take} bytes)"
            )
        self._remaining -= len(data)
        if self._remaining == 0:
            crlf = self._fp.read(2)
            if crlf not in (b"\r\n",):
                raise WireFormatError(f"chunk not terminated by CRLF (got {crlf!r})")
        return data

    def drain(self) -> None:
        """Read through the terminal chunk (positions the stream at the
        next pipelined response)."""
        while self.read(CHUNK_SIZE):
            pass


def parse_http_head(fp) -> Tuple[int, Dict[str, str]]:
    """Parse one HTTP/1.x response status line + headers off ``fp``.

    Returns ``(status, headers)`` with header names lower-cased. Used
    by the pipelining client, which multiplexes many responses over one
    buffered socket reader and therefore cannot use ``http.client``
    (each ``HTTPResponse`` would buffer past its own response).
    """
    line = fp.readline(_MAX_LINE)
    if not line:
        raise WireFormatError("connection closed before the response status line")
    parts = line.decode("latin-1").rstrip("\r\n").split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise WireFormatError(f"malformed response status line {line!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise WireFormatError(f"malformed response status {parts[1]!r}") from None
    headers: Dict[str, str] = {}
    while True:
        line = fp.readline(_MAX_LINE)
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers
