"""Figure 6 bench — Monte-Carlo parameter-estimation boxplots.

Runs the paper's §VIII-D.1 protocol (scaled to the bench scale) for the
three true parameter vectors, writes the Figure 6 tables, and caches the
raw results so the Figure 7 bench can reuse them within the session.
"""

from __future__ import annotations

from repro.experiments import fig6
from repro.experiments.common import save_tables

#: Session cache shared with bench_fig7 (same interpreter).
RESULTS_CACHE: dict = {}


def test_fig6_monte_carlo(benchmark, outdir):
    """Full Monte-Carlo study; writes one table per true theta."""

    def run():
        return fig6.run_fig6_fig7()

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    RESULTS_CACHE.update(results)
    fig6_tables = [t6 for (t6, _t7, _raw) in results.values()]
    save_tables(fig6_tables, "fig6_estimation_boxplots")
    # Sanity on the shape: every technique produced estimates for all
    # three parameters of every theta vector.
    for label, (t6, _t7, raw) in results.items():
        for technique, est in raw.estimates.items():
            assert est.shape[1] == 3
            assert (est > 0).all(), (label, technique)
