"""Regression tests: log-determinants must reject non-SPD factors.

The seed implementation took ``np.log`` of the factor diagonal without a
positivity check, so a Cholesky that silently produced a zero/negative
diagonal entry (or NaN) propagated NaN into the log-likelihood instead
of triggering the evaluator's penalty path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import NotPositiveDefiniteError
from repro.linalg.tile_cholesky import logdet_from_tile_factor
from repro.linalg.tile_matrix import TileMatrix
from repro.linalg.tlr_cholesky import logdet_from_tlr_factor
from repro.linalg.tlr_matrix import TLRMatrix


def _spd(n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    return a @ a.T + n * np.eye(n)


class TestTileLogdetGuard:
    def test_valid_factor_matches_dense(self):
        a = _spd(12)
        factor = np.linalg.cholesky(a)
        tiles = TileMatrix.from_dense(factor, 5, symmetric_lower=False)
        # Only diagonal tiles matter for the logdet.
        assert logdet_from_tile_factor(tiles) == pytest.approx(
            np.linalg.slogdet(a)[1], rel=1e-12
        )

    @pytest.mark.parametrize("bad", [0.0, -2.0, np.nan])
    def test_non_positive_diagonal_raises(self, bad):
        factor = np.linalg.cholesky(_spd(12))
        factor[7, 7] = bad
        tiles = TileMatrix.from_dense(factor, 5, symmetric_lower=False)
        with pytest.raises(NotPositiveDefiniteError):
            logdet_from_tile_factor(tiles)


class TestTLRLogdetGuard:
    def test_valid_factor_matches_dense(self):
        a = _spd(12)
        factor = np.linalg.cholesky(a)
        tlr = TLRMatrix.from_dense(a, 5, acc=1e-12)
        for k in range(tlr.nt):
            sl = tlr.grid.tile_slice(k)
            tlr.diag[k] = factor[sl, sl].copy()
        assert logdet_from_tlr_factor(tlr) == pytest.approx(
            np.linalg.slogdet(a)[1], rel=1e-12
        )

    @pytest.mark.parametrize("bad", [0.0, -1.5, np.nan])
    def test_non_positive_diagonal_raises(self, bad):
        a = _spd(12)
        factor = np.linalg.cholesky(a)
        tlr = TLRMatrix.from_dense(a, 5, acc=1e-12)
        for k in range(tlr.nt):
            sl = tlr.grid.tile_slice(k)
            tlr.diag[k] = factor[sl, sl].copy()
        tlr.diag[1][0, 0] = bad
        with pytest.raises(NotPositiveDefiniteError):
            logdet_from_tlr_factor(tlr)
