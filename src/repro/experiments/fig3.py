"""Figure 3 — time of one MLE iteration on four Intel machines.

Two complementary reproductions:

* :func:`model_series` — the paper-scale series (n = 55225..112225) from
  the calibrated performance model, one table per machine, columns
  Full-block / Full-tile / TLR at four accuracies. This is where the
  figure's *shape* (ordering of variants, growth with n, per-machine
  differences) is reproduced.
* :func:`measured_series` — real wall-clock per-iteration times on the
  host at Python-feasible n, same variant set, demonstrating the same
  ordering where the Python substrate allows.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..data.morton import sort_locations
from ..data.synthetic import generate_irregular_grid
from ..data.fields import sample_gaussian_field
from ..kernels.covariance import MaternCovariance
from ..mle.loglik import LikelihoodEvaluator
from ..perfmodel.analytic import estimate_mle_iteration
from ..perfmodel.machine import get_machine
from ..perfmodel.rankmodel import DEFAULT_RANK_MODEL, RankModel
from ..runtime import Runtime
from ..utils.timer import Stopwatch
from .common import ResultTable, bench_scale

__all__ = ["PAPER_N_VALUES", "PAPER_ACCURACIES", "model_series", "measured_series"]

#: The x-axis of the paper's Figure 3.
PAPER_N_VALUES = (55225, 63001, 71289, 79524, 87616, 96100, 104329, 112225)

#: Accuracy thresholds swept in Figure 3.
PAPER_ACCURACIES = (1e-12, 1e-9, 1e-7, 1e-5)

#: Figure 3's machines, in the paper's panel order (a)-(d).
PAPER_MACHINES = ("haswell", "broadwell", "knl", "skylake")


def model_series(
    machine_name: str,
    *,
    n_values: Sequence[int] = PAPER_N_VALUES,
    accuracies: Sequence[float] = PAPER_ACCURACIES,
    nb_dense: int = 560,
    nb_tlr: int = 1150,
    rank_model: RankModel = DEFAULT_RANK_MODEL,
) -> ResultTable:
    """Paper-scale modeled series for one machine (one Fig. 3 panel)."""
    machine = get_machine(machine_name)
    headers = ["n", "Full-block", "Full-tile"] + [f"TLR-acc({a:.0e})" for a in accuracies]
    table = ResultTable(
        title=f"Figure 3 ({machine_name}) — modeled time of one MLE iteration [s]",
        headers=headers,
    )
    for n in n_values:
        row: list[object] = [n]
        for variant, nb, acc in [("full-block", nb_dense, 0.0), ("full-tile", nb_dense, 0.0)]:
            est = estimate_mle_iteration(
                n, variant=variant, nb=nb, acc=max(acc, 1e-16), machine=machine,
                rank_model=rank_model,
            )
            row.append(None if est.oom else est.time_s)
        for acc in accuracies:
            est = estimate_mle_iteration(
                n, variant="tlr", nb=nb_tlr, acc=acc, machine=machine, rank_model=rank_model
            )
            row.append(None if est.oom else est.time_s)
        table.add_row(*row)
    table.add_note(
        f"performance model for {machine_name}: peak {machine.peak_gflops:.0f} GF, "
        f"bw {machine.mem_bw_gbs:.0f} GB/s; '-' marks modeled out-of-memory"
    )
    return table


def measured_series(
    *,
    n_values: Optional[Sequence[int]] = None,
    accuracies: Sequence[float] = (1e-9, 1e-7, 1e-5),
    tile_size: int = 200,
    theta: Sequence[float] = (1.0, 0.1, 0.5),
    num_workers: Optional[int] = None,
    repeats: int = 1,
) -> ResultTable:
    """Measured per-iteration wall-clock on the host at feasible n.

    One "iteration" = one likelihood evaluation at the true theta,
    exactly the paper's reported unit.
    """
    if n_values is None:
        n_values = (1600, 2500, 3600) if bench_scale() == "quick" else (2500, 4900, 8100, 10000)
    model = MaternCovariance(*theta)
    headers = ["n", "Full-block", "Full-tile"] + [f"TLR-acc({a:.0e})" for a in accuracies]
    table = ResultTable(
        title="Figure 3 (host) — measured time of one MLE iteration [s]",
        headers=headers,
    )
    with Runtime(num_workers=num_workers) as rt:
        for n in n_values:
            locs = generate_irregular_grid(n, seed=0)
            locs, _, _ = sort_locations(locs)
            z = sample_gaussian_field(locs, model, seed=1)
            row: list[object] = [n]
            variants: list[tuple[str, Optional[float]]] = [("full-block", None), ("full-tile", None)]
            variants += [("tlr", a) for a in accuracies]
            for variant, acc in variants:
                ev = LikelihoodEvaluator(
                    locs, z, model, variant=variant, acc=acc, tile_size=tile_size,
                    runtime=None if variant == "full-block" else rt,
                )
                sw = Stopwatch()
                for _ in range(max(1, repeats)):
                    with sw:
                        ev(model.theta)
                row.append(sw.elapsed / max(1, repeats))
            table.add_row(*row)
    table.add_note(
        f"host measurement, nb={tile_size}; Python per-tile overhead favours dense BLAS "
        "at these sizes - paper-scale behaviour is carried by the performance model"
    )
    return table
