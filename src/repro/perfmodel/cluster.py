"""Distributed-memory cluster description (paper §VIII-A, Shaheen-2).

Shaheen-2 is a Cray XC40 with 6,174 dual-socket 16-core Haswell nodes
(128 GB each) on an Aries dragonfly interconnect. The paper uses 256
(~8,200 cores) and 1,024 (~33,000 cores) node allocations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError
from .machine import MachineSpec, get_machine

__all__ = ["ClusterSpec", "shaheen2"]


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of :class:`MachineSpec` nodes.

    Attributes
    ----------
    node:
        Per-node hardware description.
    n_nodes:
        Number of allocated nodes.
    net_latency_us:
        Point-to-point message latency, microseconds.
    net_bw_gbs:
        Per-node injection bandwidth, GB/s (Aries: ~10 GB/s usable).
    """

    node: MachineSpec
    n_nodes: int
    net_latency_us: float = 1.5
    net_bw_gbs: float = 10.0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {self.n_nodes}")

    @property
    def total_cores(self) -> int:
        """Aggregate core count."""
        return self.n_nodes * self.node.cores

    @property
    def total_mem_bytes(self) -> float:
        """Aggregate memory in bytes."""
        return self.n_nodes * self.node.mem_bytes

    def grid_shape(self) -> tuple[int, int]:
        """Near-square 2-D process grid ``(pr, pc)`` with ``pr*pc == n_nodes``.

        The 2-D block-cyclic distribution used by Chameleon/HiCMA maps
        tile ``(i, j)`` to node ``(i mod pr, j mod pc)``.
        """
        pr = int(self.n_nodes**0.5)
        while self.n_nodes % pr != 0:
            pr -= 1
        return pr, self.n_nodes // pr


def shaheen2(n_nodes: int = 256) -> ClusterSpec:
    """Shaheen-2 Cray XC40 allocation of ``n_nodes`` nodes."""
    return ClusterSpec(node=get_machine("shaheen_node"), n_nodes=n_nodes)
