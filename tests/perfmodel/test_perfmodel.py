"""Tests for machines, flop counters, rank model, and cost model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.perfmodel.costmodel import TaskCost, task_time
from repro.perfmodel.cluster import ClusterSpec, shaheen2
from repro.perfmodel.flops import (
    compression_flops,
    dense_tile_bytes,
    gemm_flops,
    generation_flops,
    lr_gemm_flops,
    lr_syrk_flops,
    lr_tile_bytes,
    lr_trsm_flops,
    potrf_flops,
    syrk_flops,
    trsm_flops,
)
from repro.perfmodel.machine import MACHINES, get_machine
from repro.perfmodel.rankmodel import DEFAULT_RANK_MODEL, RankModel, calibrate_rank_model


class TestMachines:
    def test_paper_machines_present(self):
        for name in ("haswell", "broadwell", "knl", "skylake", "shaheen_node"):
            assert name in MACHINES

    def test_peak_flops_math(self):
        hw = get_machine("haswell")
        assert hw.peak_gflops == pytest.approx(36 * 2.3 * 16)
        assert hw.mem_bytes == pytest.approx(256e9)
        assert hw.sustained_gflops(0.5) == pytest.approx(hw.peak_gflops / 2)

    def test_unknown_machine(self):
        with pytest.raises(ConfigurationError):
            get_machine("epyc")

    def test_shaheen_cluster(self):
        c = shaheen2(256)
        assert c.total_cores == 256 * 32
        pr, pc = c.grid_shape()
        assert pr * pc == 256
        assert abs(pr - pc) <= pr  # near-square

    def test_cluster_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(node=get_machine("haswell"), n_nodes=0)


class TestFlops:
    def test_potrf_cubic_term(self):
        assert potrf_flops(300) == pytest.approx(300**3 / 3, rel=0.01)

    def test_dense_lr_consistency_at_full_rank(self):
        nb = 128
        assert lr_trsm_flops(nb, nb) == pytest.approx(trsm_flops(nb))

    def test_lr_cheaper_than_dense_at_low_rank(self):
        nb, k = 512, 16
        assert lr_trsm_flops(nb, k) < trsm_flops(nb)
        assert lr_syrk_flops(nb, k) < 2 * syrk_flops(nb)
        assert lr_gemm_flops(nb, k, k, k) < gemm_flops(nb, nb, nb)

    def test_monotone_in_rank(self):
        nb = 256
        f = [lr_gemm_flops(nb, k, k, k) for k in (4, 16, 64)]
        assert f == sorted(f)

    def test_bytes(self):
        assert dense_tile_bytes(100) == 8e4
        assert lr_tile_bytes(100, 10) == 8 * 2 * 100 * 10
        assert generation_flops(10, 20) > 0
        assert compression_flops(100, 5) > 0

    def test_gemm_formula(self):
        assert gemm_flops(2, 3, 4) == 48


class TestRankModel:
    def test_decay_with_separation(self):
        rm = DEFAULT_RANK_MODEL
        ranks = [rm.rank(d, 1e-7, 250) for d in (1, 2, 5, 20)]
        assert ranks == sorted(ranks, reverse=True)

    def test_growth_with_accuracy(self):
        rm = DEFAULT_RANK_MODEL
        assert rm.rank(1, 1e-12, 250) > rm.rank(1, 1e-5, 250)

    def test_growth_with_tile_size(self):
        rm = DEFAULT_RANK_MODEL
        assert rm.rank(1, 1e-7, 1000) > rm.rank(1, 1e-7, 100)

    def test_bounded_by_tile_size(self):
        rm = RankModel(a0=1e6, a1=0, p=0.1)
        assert rm.rank(1, 1e-7, 64) == 64

    def test_rank_array_and_mean(self):
        rm = DEFAULT_RANK_MODEL
        arr = rm.rank_array(10, 1e-7, 250)
        assert arr.shape == (9,)
        mean = rm.mean_rank(10, 1e-7, 250)
        assert arr.min() <= mean <= arr.max()
        assert rm.mean_rank(1, 1e-7, 250) == 0.0

    def test_separation_validation(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_RANK_MODEL.rank(0, 1e-7, 250)

    def test_calibration_recovers_decay(self):
        truth = RankModel(a0=30.0, a1=5.0, p=0.8, kmin=2.0, nb_ref=100)
        nt = 12
        rm = -np.ones((nt, nt), dtype=np.int64)
        for i in range(nt):
            for j in range(i):
                rm[i, j] = rm[j, i] = truth.rank(i - j, 1e-7, 100)
        fitted = calibrate_rank_model(rm, 1e-7, 100)
        assert fitted.p == pytest.approx(0.8, abs=0.15)
        for d in (1, 3, 8):
            assert fitted.rank(d, 1e-7, 100) == pytest.approx(
                truth.rank(d, 1e-7, 100), abs=3
            )

    def test_calibration_against_real_ranks(self, small_sigma):
        from repro.linalg.tlr_matrix import TLRMatrix

        tlr = TLRMatrix.from_dense(small_sigma, 32, acc=1e-7)
        fitted = calibrate_rank_model(tlr.rank_matrix(), 1e-7, 32)
        measured = tlr.mean_rank()
        predicted = fitted.mean_rank(tlr.nt, 1e-7, 32)
        assert predicted == pytest.approx(measured, rel=0.5)

    def test_calibration_needs_data(self):
        with pytest.raises(ConfigurationError):
            calibrate_rank_model(-np.ones((1, 1)), 1e-7, 32)


class TestCostModel:
    def test_compute_bound_task(self):
        hw = get_machine("haswell")
        # Huge flops, tiny bytes -> compute roof.
        t = task_time(TaskCost(1e12, 8.0), hw, cores=hw.cores)
        expect = 1e12 / (hw.peak_gflops * hw.eff_dense * 1e9)
        assert t == pytest.approx(expect, rel=1e-6)

    def test_memory_bound_task(self):
        hw = get_machine("haswell")
        t = task_time(TaskCost(8.0, 1e12), hw, cores=hw.cores)
        assert t == pytest.approx(1e12 / (hw.mem_bw_gbs * 1e9), rel=1e-6)

    def test_more_cores_faster_compute(self):
        hw = get_machine("haswell")
        c = TaskCost(1e12, 1e3)
        assert task_time(c, hw, cores=32) < task_time(c, hw, cores=1)

    def test_taskcost_algebra(self):
        a, b = TaskCost(1.0, 2.0), TaskCost(3.0, 4.0)
        s = a + b
        assert (s.flops, s.bytes) == (4.0, 6.0)
        d = a.scaled(10)
        assert (d.flops, d.bytes) == (10.0, 20.0)
