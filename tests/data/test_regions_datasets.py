"""Tests for regions, dataset containers, and the real-data substitutes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import GeoDataset, train_test_split
from repro.data.regions import Region, partition_bbox, points_in_region
from repro.data.soil_moisture import (
    SOIL_MOISTURE_BBOX,
    SOIL_MOISTURE_REGION_THETA,
    SoilMoistureGenerator,
    make_soil_moisture_dataset,
)
from repro.data.wind_speed import (
    WIND_SPEED_BBOX,
    WIND_SPEED_REGION_THETA,
    WindSpeedGenerator,
    make_wind_speed_dataset,
)
from repro.exceptions import ShapeError


class TestRegion:
    def test_contains_and_center(self):
        r = Region("R1", 0.0, 10.0, 0.0, 5.0)
        assert r.center == (5.0, 2.5)
        assert r.area == 50.0
        assert bool(r.contains(np.array(5.0), np.array(2.0)))
        assert not bool(r.contains(np.array(11.0), np.array(2.0)))

    def test_degenerate_raises(self):
        with pytest.raises(ShapeError):
            Region("bad", 1.0, 1.0, 0.0, 1.0)

    def test_partition_covers_bbox(self):
        regions = partition_bbox((0.0, 8.0, 0.0, 4.0), nx=4, ny=2)
        assert len(regions) == 8
        assert [r.name for r in regions] == [f"R{i}" for i in range(1, 9)]
        total_area = sum(r.area for r in regions)
        assert total_area == pytest.approx(32.0)

    def test_points_in_region(self, rng):
        regions = partition_bbox((0.0, 1.0, 0.0, 1.0), 2, 2)
        pts = rng.random((200, 2))
        counts = sum(len(points_in_region(pts, r)) for r in regions)
        # Interior points belong to >= 1 region (closed boxes share edges).
        assert counts >= 200


class TestGeoDataset:
    def test_validation(self, rng):
        with pytest.raises(ShapeError):
            GeoDataset(rng.random((10, 2)), rng.random(9))

    def test_subset_and_subsample(self, rng):
        ds = GeoDataset(rng.random((50, 2)), rng.random(50), name="d")
        sub = ds.subset(np.arange(10))
        assert sub.n == 10
        samp = ds.subsample(20, seed=0)
        assert samp.n == 20
        with pytest.raises(ShapeError):
            ds.subsample(51)

    def test_train_test_split(self, rng):
        ds = GeoDataset(rng.random((400, 2)), rng.random(400))
        train, test = train_test_split(ds, 38, seed=0)
        assert train.n == 362 and test.n == 38
        combined = np.vstack([train.locations, test.locations])
        assert len(np.unique(combined, axis=0)) == 400

    def test_split_bounds(self, rng):
        ds = GeoDataset(rng.random((10, 2)), rng.random(10))
        with pytest.raises(ShapeError):
            train_test_split(ds, 10)
        with pytest.raises(ShapeError):
            train_test_split(ds, 0)


class TestSoilMoisture:
    def test_region_constants_match_paper_table1(self):
        assert SOIL_MOISTURE_REGION_THETA["R1"] == (0.852, 5.994, 0.559)
        assert SOIL_MOISTURE_REGION_THETA["R8"] == (0.906, 27.861, 0.461)
        assert len(SOIL_MOISTURE_REGION_THETA) == 8

    def test_regions_tile_the_basin(self):
        gen = SoilMoistureGenerator()
        regions = gen.regions()
        assert len(regions) == 8
        lon_min, lon_max, lat_min, lat_max = SOIL_MOISTURE_BBOX
        assert min(r.lon_min for r in regions) == lon_min
        assert max(r.lon_max for r in regions) == lon_max

    def test_dataset_generation(self):
        ds = make_soil_moisture_dataset("R3", n=150, seed=0)
        assert ds.n == 150
        assert ds.metric == "gcd"
        np.testing.assert_allclose(ds.meta["theta_true"], (0.277, 10.878, 0.507))
        region = ds.meta["region"]
        assert np.all(region.contains(ds.locations[:, 0], ds.locations[:, 1]))

    def test_variance_scale(self):
        # The spatial sample variance underestimates theta1 when the
        # correlation range (~6 deg) rivals the region size — it must
        # still be positive and bounded by the marginal variance regime.
        ds = make_soil_moisture_dataset("R1", n=600, seed=1)
        assert 0.005 < ds.values.var() < 3.0

    def test_unknown_region(self):
        with pytest.raises(KeyError):
            make_soil_moisture_dataset("R9")

    def test_all_regions_independent(self):
        gen = SoilMoistureGenerator(points_per_region=60)
        data = gen.all_regions(seed=5)
        assert set(data) == set(SOIL_MOISTURE_REGION_THETA)
        assert not np.array_equal(data["R1"].values, data["R2"].values[: data["R1"].n])


class TestWindSpeed:
    def test_region_constants_match_paper_table2(self):
        assert WIND_SPEED_REGION_THETA["R1"] == (8.715, 32.083, 1.210)
        assert len(WIND_SPEED_REGION_THETA) == 4

    def test_dataset_generation(self):
        ds = make_wind_speed_dataset("R2", n=120, seed=0)
        assert ds.n == 120 and ds.metric == "gcd"
        lon_min, lon_max, lat_min, lat_max = WIND_SPEED_BBOX
        assert ds.locations[:, 0].min() >= lon_min
        assert ds.locations[:, 0].max() <= lon_max

    def test_smoother_than_soil(self):
        # Wind truth smoothness > 1 vs soil ~0.5 (Table II vs Table I).
        assert all(t[2] > 1.0 for t in WIND_SPEED_REGION_THETA.values())
        assert all(t[2] < 0.6 for t in SOIL_MOISTURE_REGION_THETA.values())

    def test_unknown_region(self):
        with pytest.raises(KeyError):
            make_wind_speed_dataset("R5")
