#!/usr/bin/env python
"""Distributed-memory study on the modeled Shaheen-2 (paper Figs. 4-5).

Uses the performance-model substitute for the Cray XC40 (DESIGN.md §4):
the closed-form estimator projects one MLE iteration and one prediction
at paper scale (n up to 2M over 256/1024 nodes), and the discrete-event
simulator executes a small TLR Cholesky DAG over a modeled 16-node
allocation with 2-D block-cyclic tiles to show utilization and
communication behaviour.

Run:  python examples/distributed_shaheen_simulation.py
"""

from __future__ import annotations

from repro.experiments.fig4 import model_series
from repro.experiments.fig5 import model_series as fig5_series
from repro.perfmodel import DistributedSimulator, estimate_mle_iteration, shaheen2


def paper_scale_projection() -> None:
    print("=== Figure 4 (modeled): one MLE iteration on Shaheen-2 ===\n")
    for nodes in (256, 1024):
        print(model_series(nodes).render())
    print("=== Figure 5 (modeled): prediction of 100 unknowns, 256 nodes ===\n")
    print(fig5_series().render())


def memory_wall_demo() -> None:
    print("=== Memory accounting: why TLR unlocks larger n ===\n")
    cluster = shaheen2(16)  # deliberately small allocation
    print(f"{'n':>9}  {'variant':>10}  {'GB/node':>8}  {'fits?':>5}")
    for n in (250_000, 500_000, 1_000_000):
        for variant, nb, acc in (("full-tile", 560, 1e-9), ("tlr", 1900, 1e-9)):
            est = estimate_mle_iteration(
                n, variant=variant, nb=nb, acc=acc, cluster=cluster
            )
            print(
                f"{n:>9}  {variant:>10}  {est.mem_per_node_bytes / 1e9:8.1f}  "
                f"{'no' if est.oom else 'yes':>5}"
            )
    print("\n('no' rows are the paper's missing Figure-4 points: out of memory)\n")


def des_drilldown() -> None:
    print("=== Discrete-event simulation: TLR Cholesky on 16 nodes ===\n")
    sim = DistributedSimulator(shaheen2(16))
    for variant in ("full-tile", "tlr"):
        tasks = sim.build_cholesky_dag(24, 1900, variant=variant, acc=1e-7)
        rep = sim.simulate(tasks, 1900, variant=variant)
        print(
            f"{variant:>10}: makespan {rep.makespan_s:8.2f}s  "
            f"tasks {rep.n_tasks}  comm {rep.comm_bytes / 1e9:6.2f} GB "
            f"({rep.comm_events} transfers)  utilization {rep.utilization(sim.cluster):.2f}"
        )
    print()


def main() -> None:
    paper_scale_projection()
    memory_wall_demo()
    des_drilldown()


if __name__ == "__main__":
    main()
