"""Discrete-event simulation of distributed task execution.

Simulates the tile Cholesky (dense or TLR) task DAG over a cluster with
the 2-D block-cyclic tile distribution Chameleon/HiCMA use on Shaheen-2:

* tile ``(i, j)`` lives on node ``(i mod pr) * pc + (j mod pc)``;
* a task executes on the node owning its output tile;
* each node runs ``cores`` concurrent workers;
* a remote input adds a transfer delay ``latency + bytes/bandwidth``,
  paid once per (producing task, consuming node) pair — the runtime
  caches received replicas, as StarPU's MPI cache does;
* list scheduling in priority order (panel tasks first), which is the
  same heuristic the real runtime applies.

The simulator is exact over the explicit task graph, so it is quadratic
to cubic in the tile count — use it at small ``nt`` to validate the
closed-form estimates in :mod:`.analytic` (tests do exactly that) and
for scheduling/distribution ablations.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import SimulationError
from .cluster import ClusterSpec
from .costmodel import TaskCost
from .flops import (
    dense_tile_bytes,
    gemm_flops,
    lr_syrk_flops,
    lr_trsm_flops,
    potrf_flops,
    syrk_flops,
    trsm_flops,
)
from .rankmodel import DEFAULT_RANK_MODEL, RankModel

__all__ = ["SimTask", "SimReport", "DistributedSimulator"]


@dataclass
class SimTask:
    """A node in the simulated task DAG."""

    tid: int
    name: str
    out_tile: Tuple[int, int]
    in_tiles: List[Tuple[int, int]]
    cost: TaskCost
    priority: int
    deps: List[int] = field(default_factory=list)
    # Filled during simulation:
    start: float = 0.0
    finish: float = 0.0
    node: int = -1


@dataclass
class SimReport:
    """Outcome of one simulated execution.

    Attributes
    ----------
    makespan_s:
        Simulated wall-clock of the whole DAG.
    total_flops:
        Sum of task flops.
    comm_bytes:
        Total bytes moved between nodes.
    comm_events:
        Number of inter-node transfers.
    mem_per_node_bytes:
        Max over nodes of resident tile bytes.
    oom:
        True when some node's resident tiles exceed its memory.
    node_busy_s:
        Per-node total busy seconds (load-balance diagnostics).
    n_tasks:
        Task count.
    """

    makespan_s: float
    total_flops: float
    comm_bytes: float
    comm_events: int
    mem_per_node_bytes: float
    oom: bool
    node_busy_s: np.ndarray
    n_tasks: int

    def utilization(self, cluster: ClusterSpec) -> float:
        """Aggregate worker utilization in [0, 1]."""
        if self.makespan_s <= 0:
            return 0.0
        cap = self.makespan_s * cluster.n_nodes * cluster.node.cores
        return float(np.sum(self.node_busy_s) / cap)


class DistributedSimulator:
    """Builds and simulates Cholesky task DAGs on a modeled cluster.

    Parameters
    ----------
    cluster:
        Hardware model (nodes, cores, network).
    rank_model:
        TLR tile-rank model (TLR variant only).
    """

    def __init__(
        self, cluster: ClusterSpec, rank_model: RankModel = DEFAULT_RANK_MODEL
    ) -> None:
        self.cluster = cluster
        self.rank_model = rank_model
        self.pr, self.pc = cluster.grid_shape()

    # ------------------------------------------------------------- mapping
    def owner(self, i: int, j: int) -> int:
        """Node owning tile ``(i, j)`` under 2-D block-cyclic distribution."""
        return (i % self.pr) * self.pc + (j % self.pc)

    # ---------------------------------------------------------- DAG builds
    def build_cholesky_dag(
        self, nt: int, nb: int, *, variant: str = "full-tile", acc: float = 1e-9
    ) -> List[SimTask]:
        """Symbolic right-looking Cholesky DAG with per-task roofline costs.

        Dependencies are inferred with the same last-writer/readers rules
        as the real runtime, applied to symbolic tile coordinates.
        """
        if variant not in ("full-tile", "tlr"):
            raise SimulationError(f"unsupported simulated variant {variant!r}")
        ranks: Optional[np.ndarray] = None
        if variant == "tlr":
            ranks = self.rank_model.rank_array(max(nt, 2), acc, nb)

        def tile_rank(i: int, j: int) -> int:
            assert ranks is not None
            return int(ranks[abs(i - j) - 1])

        def tile_bytes(i: int, j: int) -> float:
            if variant == "tlr" and i != j:
                return 8.0 * 2 * nb * tile_rank(i, j)
            return dense_tile_bytes(nb)

        tasks: List[SimTask] = []
        last_writer: Dict[Tuple[int, int], int] = {}
        readers: Dict[Tuple[int, int], List[int]] = {}

        def add(name: str, out: Tuple[int, int], ins: List[Tuple[int, int]], cost: TaskCost, prio: int) -> None:
            tid = len(tasks)
            t = SimTask(tid, name, out, ins, cost, prio)
            deps: set[int] = set()
            for tile in ins:
                if tile in last_writer:
                    deps.add(last_writer[tile])
                readers.setdefault(tile, []).append(tid)
            if out in last_writer:
                deps.add(last_writer[out])
            deps.update(readers.get(out, []))
            deps.discard(tid)
            t.deps = sorted(deps)
            last_writer[out] = tid
            readers[out] = []
            tasks.append(t)

        for k in range(nt):
            base = nt - k
            add("potrf", (k, k), [], TaskCost(potrf_flops(nb), 2 * dense_tile_bytes(nb)), 3 * base)
            for i in range(k + 1, nt):
                if variant == "tlr":
                    kr = tile_rank(i, k)
                    c = TaskCost(lr_trsm_flops(nb, kr), dense_tile_bytes(nb) + 2 * tile_bytes(i, k))
                else:
                    c = TaskCost(trsm_flops(nb), 3 * dense_tile_bytes(nb))
                add("trsm", (i, k), [(k, k)], c, 2 * base)
            for i in range(k + 1, nt):
                if variant == "tlr":
                    kr = tile_rank(i, k)
                    c = TaskCost(lr_syrk_flops(nb, kr), 2 * dense_tile_bytes(nb) + tile_bytes(i, k))
                else:
                    c = TaskCost(syrk_flops(nb), 3 * dense_tile_bytes(nb))
                add("syrk", (i, i), [(i, k)], c, base)
                for j in range(k + 1, i):
                    if variant == "tlr":
                        kij, kik, kjk = tile_rank(i, j), tile_rank(i, k), tile_rank(j, k)
                        kk = kij + kik
                        fl = 4.0 * kik * kjk * nb + 8.0 * nb * kk * kk + 22.0 * kk**3
                        by = tile_bytes(i, k) + tile_bytes(j, k) + 2 * tile_bytes(i, j)
                        c = TaskCost(fl, by)
                    else:
                        c = TaskCost(gemm_flops(nb, nb, nb), 4 * dense_tile_bytes(nb))
                    add("gemm", (i, j), [(i, k), (j, k)], c, base)
        return tasks

    # ----------------------------------------------------------- simulate
    def _task_seconds(self, cost: TaskCost) -> float:
        node = self.cluster.node
        per_core = node.peak_gflops / node.cores * node.eff_dense * 1e9
        compute = cost.flops / per_core
        memory = cost.bytes / (node.mem_bw_gbs * 1e9 * 0.25)
        return max(compute, memory)

    def _transfer_seconds(self, nbytes: float) -> float:
        return self.cluster.net_latency_us * 1e-6 + nbytes / (self.cluster.net_bw_gbs * 1e9)

    def simulate(self, tasks: List[SimTask], nb: int, *, variant: str = "full-tile") -> SimReport:
        """List-schedule the DAG and return the simulated profile.

        Ready tasks are dispatched in (priority, insertion) order to the
        earliest-free worker of the node owning their output tile.
        Remote inputs delay the start by the modeled transfer time, paid
        once per (producer, destination-node).
        """
        p = self.cluster.n_nodes
        cores = self.cluster.node.cores
        worker_free = np.zeros((p, cores), dtype=np.float64)
        node_busy = np.zeros(p, dtype=np.float64)
        replicas: Dict[Tuple[int, int], float] = {}  # (producer tid, node) -> avail time
        comm_bytes = 0.0
        comm_events = 0

        n_tasks = len(tasks)
        indeg = np.zeros(n_tasks, dtype=np.int64)
        dependents: List[List[int]] = [[] for _ in range(n_tasks)]
        for t in tasks:
            indeg[t.tid] = len(t.deps)
            for d in t.deps:
                dependents[d].append(t.tid)

        ready: List[Tuple[int, int, int]] = []  # (-priority, tid, tid)
        for t in tasks:
            if indeg[t.tid] == 0:
                heapq.heappush(ready, (-t.priority, t.tid, t.tid))

        by_tile_producer: Dict[Tuple[int, int], int] = {}
        finished = 0
        while ready:
            _, _, tid = heapq.heappop(ready)
            t = tasks[tid]
            node = self.owner(*t.out_tile)
            data_ready = 0.0
            for dep in t.deps:
                prod = tasks[dep]
                avail = prod.finish
                if prod.node != node:
                    key = (dep, node)
                    if key not in replicas:
                        nbytes = _tile_xfer_bytes(prod.out_tile, nb, variant, self.rank_model, t)
                        replicas[key] = prod.finish + self._transfer_seconds(nbytes)
                        comm_bytes += nbytes
                        comm_events += 1
                    avail = replicas[key]
                data_ready = max(data_ready, avail)
            w = int(np.argmin(worker_free[node]))
            start = max(data_ready, worker_free[node, w])
            dur = self._task_seconds(t.cost)
            t.start, t.finish, t.node = start, start + dur, node
            worker_free[node, w] = t.finish
            node_busy[node] += dur
            by_tile_producer[t.out_tile] = tid
            finished += 1
            for dep_tid in dependents[tid]:
                indeg[dep_tid] -= 1
                if indeg[dep_tid] == 0:
                    heapq.heappush(ready, (-tasks[dep_tid].priority, dep_tid, dep_tid))
        if finished != n_tasks:
            raise SimulationError(
                f"dependency cycle: executed {finished} of {n_tasks} tasks"
            )

        # Memory: owned tiles per node (lower triangle) + replica overhead.
        nt = 1 + max(max(t.out_tile) for t in tasks) if tasks else 0
        mem = np.zeros(p, dtype=np.float64)
        for i in range(nt):
            for j in range(i + 1):
                if variant == "tlr" and i != j:
                    k = int(self.rank_model.rank_array(max(nt, 2), 1e-9, nb)[abs(i - j) - 1])
                    nbytes = 8.0 * 2 * nb * k
                else:
                    nbytes = dense_tile_bytes(nb)
                mem[self.owner(i, j)] += nbytes
        mem_max = float(mem.max() * 1.15) if nt else 0.0
        makespan = float(max((t.finish for t in tasks), default=0.0))
        return SimReport(
            makespan_s=makespan,
            total_flops=float(sum(t.cost.flops for t in tasks)),
            comm_bytes=comm_bytes,
            comm_events=comm_events,
            mem_per_node_bytes=mem_max,
            oom=mem_max > self.cluster.node.mem_bytes,
            node_busy_s=node_busy,
            n_tasks=n_tasks,
        )


def _tile_xfer_bytes(
    tile: Tuple[int, int], nb: int, variant: str, rank_model: RankModel, consumer: SimTask
) -> float:
    """Bytes on the wire when ``tile`` is shipped to a remote consumer."""
    i, j = tile
    if variant == "tlr" and i != j:
        nt = max(abs(i - j) + 1, 2)
        k = int(rank_model.rank_array(nt + 1, 1e-9, nb)[abs(i - j) - 1])
        return 8.0 * 2 * nb * k
    return dense_tile_bytes(nb)
