"""Low-overhead timing spans with cross-process trace assembly.

The one function everybody calls is :func:`span`::

    with span("factorization", variant="tlr"):
        ...

When telemetry is **off** (the default) that costs one module-global
read plus a shared no-op context manager — the same nanosecond class
as the PR 6 ``fault_point`` hooks, cheap enough to leave in the MLE
hot loop. When **on**, each ``with`` block records one span dict into
a bounded process-local :class:`SpanRecorder` ring (and optionally a
JSONL sink), parented to the enclosing span via the contextvar in
:mod:`~repro.telemetry.context`.

Arming follows the fault-injection playbook: explicit
:func:`configure` wins; otherwise the first hook resolves lazily from
the ``REPRO_TELEMETRY`` / ``REPRO_TELEMETRY_MAX_SPANS`` /
``REPRO_TELEMETRY_SINK`` environment (how spawned workers and fit
legs self-arm) and falls back to this thread's
:class:`~repro.config.Config` knobs.

Spans are plain dicts — they cross pickle pipes and JSONL files
without a schema migration story::

    {"trace_id", "span_id", "parent_id", "name", "t_start" (epoch s),
     "duration" (s), "pid", "annotations" ([[key, value], ...]),
     "attrs" ({...})}
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextvars import ContextVar
from typing import Any, Dict, Iterable, List, Optional

from ..config import get_config
from . import context as _ctx

__all__ = [
    "Span",
    "SpanRecorder",
    "annotate",
    "configure",
    "enabled",
    "get_recorder",
    "record_span",
    "reset_telemetry",
    "settings",
    "span",
]

ENV_ENABLED = "REPRO_TELEMETRY"
ENV_MAX_SPANS = "REPRO_TELEMETRY_MAX_SPANS"
ENV_SINK = "REPRO_TELEMETRY_SINK"

# Process-global switch. ``None`` means "not yet resolved": the first
# hook resolves from env/config exactly once, so the steady-state
# disabled path is a single global read.
_ENABLED: Optional[bool] = None
_RECORDER: Optional["SpanRecorder"] = None
_SINK: Optional["_JsonlSink"] = None
_LOCK = threading.Lock()

# The innermost *open* Span on this thread/task — what module-level
# :func:`annotate` (breaker transitions, fault firings) attaches to.
_ACTIVE: ContextVar[Optional["Span"]] = ContextVar("repro_active_span", default=None)


class SpanRecorder:
    """Bounded, thread-safe ring of finished spans (oldest dropped)."""

    def __init__(self, max_spans: int = 10_000) -> None:
        self.max_spans = max(1, int(max_spans))
        self._spans: deque = deque(maxlen=self.max_spans)
        self._dropped = 0
        self._lock = threading.Lock()

    def record(self, rec: Dict[str, Any]) -> None:
        with self._lock:
            if len(self._spans) == self.max_spans:
                self._dropped += 1
            self._spans.append(rec)

    @property
    def dropped(self) -> int:
        return self._dropped

    def __len__(self) -> int:
        return len(self._spans)

    def snapshot(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._spans)

    def for_trace(self, trace_id: str) -> List[Dict[str, Any]]:
        with self._lock:
            return [s for s in self._spans if s.get("trace_id") == trace_id]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._dropped = 0


class _JsonlSink:
    """Bounded per-process JSONL span sink (``spans-<pid>.jsonl``).

    One file per pid so router, workers, and fit legs never interleave
    writes; :func:`repro.perfmodel.calibrate.load_spans` reads the
    whole directory back. Stops writing (and counts drops) past
    ``max_spans`` so a runaway soak can't fill the disk.
    """

    def __init__(self, directory: str, max_spans: int) -> None:
        self.directory = str(directory)
        self.max_spans = max(1, int(max_spans))
        self._written = 0
        self.dropped = 0
        self._fh = None
        self._lock = threading.Lock()

    def write(self, rec: Dict[str, Any]) -> None:
        with self._lock:
            if self._written >= self.max_spans:
                self.dropped += 1
                return
            if self._fh is None:
                os.makedirs(self.directory, exist_ok=True)
                path = os.path.join(self.directory, f"spans-{os.getpid()}.jsonl")
                self._fh = open(path, "a", encoding="utf-8")
            self._fh.write(json.dumps(rec) + "\n")
            self._fh.flush()
            self._written += 1

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


def _resolve() -> bool:
    """First-hook lazy arm: env wins, then this thread's config."""
    global _ENABLED, _RECORDER, _SINK
    with _LOCK:
        if _ENABLED is not None:  # lost the race to configure()
            return _ENABLED
        env = os.environ.get(ENV_ENABLED)
        if env is not None:
            on = env.strip() not in ("", "0", "false", "no")
        else:
            on = bool(get_config().telemetry_enabled)
        max_spans = _max_spans_hint()
        if on:
            _RECORDER = SpanRecorder(max_spans)
            sink_dir = os.environ.get(ENV_SINK)
            if sink_dir:
                _SINK = _JsonlSink(sink_dir, max_spans)
        _ENABLED = on
        return on


def _max_spans_hint() -> int:
    env = os.environ.get(ENV_MAX_SPANS)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return int(get_config().telemetry_max_spans)


def configure(
    enabled: Optional[bool] = None,
    *,
    max_spans: Optional[int] = None,
    sink_dir: Optional[str] = None,
    propagate: bool = False,
) -> None:
    """Explicitly arm/disarm telemetry for this process.

    ``propagate=True`` additionally exports the settings to the
    environment so child processes (serving workers, fit legs)
    self-arm on their first hook — the same mechanism fault plans use.
    """
    global _ENABLED, _RECORDER, _SINK
    with _LOCK:
        if enabled is not None:
            _ENABLED = bool(enabled)
        elif _ENABLED is None:
            _ENABLED = True  # configure() with tuning args implies "on"
        n = int(max_spans) if max_spans is not None else _max_spans_hint()
        if _ENABLED:
            if _RECORDER is None or _RECORDER.max_spans != n:
                _RECORDER = SpanRecorder(n)
            if sink_dir is not None:
                if _SINK is not None:
                    _SINK.close()
                _SINK = _JsonlSink(sink_dir, n)
        else:
            _RECORDER = None
            if _SINK is not None:
                _SINK.close()
            _SINK = None
        if propagate:
            os.environ[ENV_ENABLED] = "1" if _ENABLED else "0"
            os.environ[ENV_MAX_SPANS] = str(n)
            if sink_dir is not None:
                os.environ[ENV_SINK] = str(sink_dir)


def reset_telemetry() -> None:
    """Test hook: back to the pristine 'unresolved' state."""
    global _ENABLED, _RECORDER, _SINK
    with _LOCK:
        _ENABLED = None
        _RECORDER = None
        if _SINK is not None:
            _SINK.close()
        _SINK = None
    for key in (ENV_ENABLED, ENV_MAX_SPANS, ENV_SINK):
        os.environ.pop(key, None)


def enabled() -> bool:
    e = _ENABLED
    if e is None:
        return _resolve()
    return e


def settings() -> Dict[str, Any]:
    """This process's resolved telemetry settings.

    The shape :func:`configure` accepts — what a parent process ships
    to children (serving workers, fit legs) so they arm identically
    regardless of start method.
    """
    on = enabled()  # forces resolution
    sink = _SINK
    return {
        "enabled": on,
        "max_spans": _max_spans_hint(),
        "sink_dir": sink.directory if sink is not None else os.environ.get(ENV_SINK),
    }


def get_recorder() -> Optional[SpanRecorder]:
    if not enabled():
        return None
    return _RECORDER


def _emit(rec: Dict[str, Any]) -> None:
    rec_recorder = _RECORDER
    if rec_recorder is not None:
        rec_recorder.record(rec)
    sink = _SINK
    if sink is not None:
        sink.write(rec)


class Span:
    """One open timing span; use via ``with span(name): ...``."""

    __slots__ = (
        "name",
        "attrs",
        "ctx",
        "annotations",
        "_t_wall",
        "_t0",
        "_ctx_token",
        "_active_token",
    )

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.annotations: List[List[Any]] = []
        parent = _ctx.current()
        self.ctx = _ctx.child_of(parent) if parent is not None else _ctx.new_trace()

    def __enter__(self) -> "Span":
        self._ctx_token = _ctx.set_current(self.ctx)
        self._active_token = _ACTIVE.set(self)
        self._t_wall = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._t0
        _ACTIVE.reset(self._active_token)
        _ctx.reset_current(self._ctx_token)
        if exc_type is not None:
            self.annotations.append(["error", exc_type.__name__])
        rec: Dict[str, Any] = {
            "trace_id": self.ctx.trace_id,
            "span_id": self.ctx.span_id,
            "parent_id": self.ctx.parent_id,
            "name": self.name,
            "t_start": self._t_wall,
            "duration": duration,
            "pid": os.getpid(),
        }
        if self.annotations:
            rec["annotations"] = self.annotations
        if self.attrs:
            rec["attrs"] = self.attrs
        _emit(rec)
        return False

    def annotate(self, key: str, value: Any) -> None:
        self.annotations.append([key, value])


class _NoopSpan:
    """Shared do-nothing span — the disabled fast path allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, key: str, value: Any) -> None:
        pass


_NOOP = _NoopSpan()


def span(name: str, **attrs: Any):
    """Open a named child span of whatever context is active.

    Disabled path: one global read and a shared no-op object.
    """
    e = _ENABLED
    if e is None:
        e = _resolve()
    if not e:
        return _NOOP
    return Span(name, attrs)


def annotate(key: str, value: Any) -> None:
    """Attach ``key=value`` to the innermost open span, if any.

    This is how out-of-band events (circuit-breaker transitions,
    fault-injection firings) land on the request trace that caused
    them. No-op (one global read) when telemetry is off or no span is
    open.
    """
    e = _ENABLED
    if e is None:
        e = _resolve()
    if not e:
        return
    active = _ACTIVE.get()
    if active is not None:
        active.annotate(key, value)


def record_span(
    name: str,
    duration: float,
    *,
    t_start: Optional[float] = None,
    ctx: Optional[_ctx.TraceContext] = None,
    parent_id: Optional[str] = None,
    annotations: Optional[List[List[Any]]] = None,
    **attrs: Any,
) -> Optional[Dict[str, Any]]:
    """Record an already-measured interval as a span.

    For phases whose start/end were captured elsewhere: queue-wait
    (measured from the request's submit timestamp) and
    :class:`~repro.runtime.trace.TraceEvent` adoption (runtime worker
    threads never see the request's contextvar).
    """
    if not enabled():
        return None
    parent = ctx if ctx is not None else _ctx.current()
    if parent is not None:
        trace_id = parent.trace_id
        pid_of_parent = parent.span_id if parent_id is None else parent_id
    else:
        root = _ctx.new_trace()
        trace_id, pid_of_parent = root.trace_id, parent_id
    rec: Dict[str, Any] = {
        "trace_id": trace_id,
        "span_id": _ctx.new_span_id(),
        "parent_id": pid_of_parent,
        "name": name,
        "t_start": time.time() - duration if t_start is None else t_start,
        "duration": float(duration),
        "pid": os.getpid(),
    }
    if annotations:
        rec["annotations"] = annotations
    if attrs:
        rec["attrs"] = attrs
    _emit(rec)
    return rec


def adopt_trace_events(
    events: Iterable[Any], *, ctx: Optional[_ctx.TraceContext] = None
) -> int:
    """Convert runtime :class:`TraceEvent`\\ s into child spans of *ctx*.

    Task events carry ``perf_counter`` timestamps; they're shifted onto
    the wall clock so they nest visually under their parent span. Used
    by :class:`~repro.mle.prediction_engine.PredictionEngine` to join
    the task-level and request-level views.
    """
    if not enabled():
        return 0
    offset = time.time() - time.perf_counter()
    n = 0
    for ev in events:
        record_span(
            f"task:{ev.name}",
            max(0.0, ev.t_end - ev.t_start),
            t_start=ev.t_start + offset,
            ctx=ctx,
            worker=ev.worker,
        )
        n += 1
    return n
