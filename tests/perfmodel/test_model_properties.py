"""Property-based hardening of the analytic performance model.

The planner (``repro.plan``, ``GET /v1/plan``) trusts
:func:`estimate_mle_iteration` / :func:`estimate_prediction` to rank
configurations, so the model must satisfy basic sanity laws on *every*
input, not just the paper's table points: totals are non-negative and
finite, the stage breakdown accounts for the total, cost algebra is
associative, time grows with problem size, and sustained rates never
exceed peak.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.perfmodel import (
    MACHINES,
    TaskCost,
    estimate_mle_iteration,
    estimate_prediction,
    shaheen2,
    task_time,
)
from repro.perfmodel.machine import MachineSpec

MACHINE_NAMES = sorted(MACHINES)
VARIANTS = ("full-block", "full-tile", "tlr")

ns = st.integers(min_value=2, max_value=200_000)
nbs = st.sampled_from((64, 250, 560, 1024, 1900))
accs = st.sampled_from((1e-5, 1e-7, 1e-9, 1e-12))
variants = st.sampled_from(VARIANTS)
machines = st.sampled_from(MACHINE_NAMES).map(MACHINES.__getitem__)

# Finite positive task costs spanning tiny to tile-sized work.
costs = st.builds(
    TaskCost,
    st.floats(min_value=0.0, max_value=1e15, allow_nan=False, allow_infinity=False),
    st.floats(min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False),
)


# ------------------------------------------------------------- estimates
@given(n=ns, nb=nbs, acc=accs, variant=variants, machine=machines)
def test_estimate_is_finite_and_non_negative(n, nb, acc, variant, machine):
    est = estimate_mle_iteration(n, variant=variant, nb=nb, acc=acc, machine=machine)
    for value in (
        est.time_s,
        est.flops,
        est.bytes,
        est.matrix_bytes,
        est.mem_per_node_bytes,
    ):
        assert math.isfinite(value)
        assert value >= 0.0
    assert all(math.isfinite(v) and v >= 0.0 for v in est.breakdown.values())


@given(n=ns, nb=nbs, acc=accs, variant=variants, machine=machines)
def test_shared_memory_breakdown_sums_to_total(n, nb, acc, variant, machine):
    est = estimate_mle_iteration(n, variant=variant, nb=nb, acc=acc, machine=machine)
    assert est.time_s == pytest.approx(sum(est.breakdown.values()), rel=1e-9)


@given(n=ns, nb=nbs, acc=accs, variant=variants)
def test_cluster_breakdown_sums_excluding_overlapped_comm(n, nb, acc, variant):
    est = estimate_mle_iteration(
        n, variant=variant, nb=nb, acc=acc, cluster=shaheen2(16)
    )
    accounted = sum(
        v for k, v in est.breakdown.items() if k != "communication_overlapped"
    )
    assert est.time_s == pytest.approx(accounted, rel=1e-9)


@given(
    n=st.integers(min_value=2, max_value=50_000),
    nb=nbs,
    acc=accs,
    variant=variants,
    machine=machines,
    growth=st.integers(min_value=1, max_value=4),
)
def test_time_monotone_in_n(n, nb, acc, variant, machine, growth):
    small = estimate_mle_iteration(n, variant=variant, nb=nb, acc=acc, machine=machine)
    large = estimate_mle_iteration(
        n * growth, variant=variant, nb=nb, acc=acc, machine=machine
    )
    assert large.time_s >= small.time_s * (1.0 - 1e-9)
    assert large.matrix_bytes >= small.matrix_bytes * (1.0 - 1e-9)


@given(n=ns, nb=nbs, acc=accs, variant=variants, machine=machines)
def test_prediction_adds_cross_covariance_stage(n, nb, acc, variant, machine):
    est = estimate_prediction(n, 100, variant=variant, nb=nb, acc=acc, machine=machine)
    assert "cross_covariance" in est.breakdown
    assert est.time_s == pytest.approx(sum(est.breakdown.values()), rel=1e-9)


@given(n=ns, nb=nbs, acc=accs, variant=variants, machine=machines)
def test_oom_flag_matches_memory_capacity(n, nb, acc, variant, machine):
    est = estimate_mle_iteration(n, variant=variant, nb=nb, acc=acc, machine=machine)
    assert est.oom == (est.mem_per_node_bytes > machine.mem_bytes)


# ------------------------------------------------------------- TaskCost
@given(a=costs, b=costs)
def test_taskcost_addition_commutes(a, b):
    assert (a + b).flops == (b + a).flops
    assert (a + b).bytes == (b + a).bytes


@given(a=costs, b=costs, c=costs)
def test_taskcost_addition_associates(a, b, c):
    lhs = (a + b) + c
    rhs = a + (b + c)
    assert lhs.flops == pytest.approx(rhs.flops, rel=1e-12)
    assert lhs.bytes == pytest.approx(rhs.bytes, rel=1e-12)


@given(a=costs, k=st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
def test_taskcost_scaling_is_linear(a, k):
    scaled = a.scaled(k)
    assert scaled.flops == pytest.approx(a.flops * k, rel=1e-12)
    assert scaled.bytes == pytest.approx(a.bytes * k, rel=1e-12)
    assert a.scaled(1.0).flops == a.flops


@given(
    a=costs,
    b=costs,
    k=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)
def test_taskcost_scaling_distributes_over_addition(a, b, k):
    lhs = (a + b).scaled(k)
    rhs = a.scaled(k) + b.scaled(k)
    assert lhs.flops == pytest.approx(rhs.flops, rel=1e-12)
    assert lhs.bytes == pytest.approx(rhs.bytes, rel=1e-12)


# ------------------------------------------------------------- roofline
@given(
    machine=machines,
    eff=st.floats(min_value=1e-4, max_value=1.0, allow_nan=False),
)
def test_sustained_never_exceeds_peak(machine, eff):
    sustained = machine.sustained_gflops(eff)
    assert 0.0 < sustained <= machine.peak_gflops * (1.0 + 1e-12)


@given(
    cost=costs,
    machine=machines,
    eff=st.floats(min_value=1e-3, max_value=1.0, allow_nan=False),
)
def test_task_time_bounded_below_by_peak_rate(cost, machine, eff):
    t = task_time(cost, machine, efficiency=eff)
    assert math.isfinite(t) and t >= 0.0
    # No task finishes faster than the single-core peak compute bound.
    per_core_peak = machine.peak_gflops / machine.cores * 1e9
    assert t >= cost.flops / per_core_peak * (1.0 - 1e-9)


@given(eff=st.floats(min_value=1e-4, max_value=1.0, allow_nan=False))
def test_gen_efficiency_override_and_fallback(eff):
    base = MACHINES[MACHINE_NAMES[0]]
    plain = MachineSpec(**{**base.__dict__, "eff_gen": None})
    tuned = MachineSpec(**{**base.__dict__, "eff_gen": eff})
    assert plain.gen_efficiency == pytest.approx(base.eff_dense * 0.5)
    assert tuned.gen_efficiency == pytest.approx(eff)
