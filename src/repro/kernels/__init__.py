"""Covariance kernels and distance metrics (paper §IV).

This subpackage implements the Matérn covariance family — the de facto
model in geostatistics used throughout the paper — together with its
special cases (exponential, Whittle, Gaussian, powered exponential) and
the two distance metrics the paper uses: Euclidean for synthetic data and
Great-Circle Distance (haversine) for real datasets on the sphere.
"""

from .distance import (
    euclidean_distance_matrix,
    great_circle_distance_matrix,
    haversine,
    pairwise_distance,
)
from .matern import (
    exponential_correlation,
    gaussian_correlation,
    matern_correlation,
    whittle_correlation,
)
from .covariance import (
    CovarianceModel,
    ExponentialCovariance,
    GaussianCovariance,
    MaternCovariance,
    PoweredExponentialCovariance,
    WhittleCovariance,
)

__all__ = [
    "euclidean_distance_matrix",
    "great_circle_distance_matrix",
    "haversine",
    "pairwise_distance",
    "matern_correlation",
    "exponential_correlation",
    "whittle_correlation",
    "gaussian_correlation",
    "CovarianceModel",
    "MaternCovariance",
    "ExponentialCovariance",
    "WhittleCovariance",
    "GaussianCovariance",
    "PoweredExponentialCovariance",
]
