"""Parametric covariance models over spatial locations.

A :class:`CovarianceModel` bundles a correlation family with a parameter
vector ``theta`` and a distance metric, and knows how to materialize

* the full ``(n, n)`` covariance matrix ``Sigma(theta)`` (paper §III),
* arbitrary rectangular *tiles* ``Sigma[rows, cols]`` — the unit of work
  for tile and TLR algorithms, generated on demand so the full dense
  matrix never needs to exist for compressed paths,
* cross-covariance blocks between two location sets (prediction, eq. (2)).

The Matérn model (paper §IV) is the primary citizen; the named special
cases are provided as small subclasses for convenience and testing.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ShapeError
from ..utils.validation import as_float_array, check_locations, check_positive
from .distance import pairwise_distance, pairwise_distance_block
from .matern import gaussian_correlation, matern_correlation

__all__ = [
    "CovarianceModel",
    "MaternCovariance",
    "ExponentialCovariance",
    "WhittleCovariance",
    "GaussianCovariance",
    "PoweredExponentialCovariance",
]


class CovarianceModel:
    """Base class: stationary covariance ``C(r; theta)`` over a metric.

    Subclasses implement :meth:`correlation` mapping distances to
    correlations in ``[0, 1]``; this class handles variance scaling,
    nugget, matrix/tile assembly and parameter bookkeeping.

    Parameters
    ----------
    variance:
        Marginal variance :math:`\\theta_1 > 0`.
    metric:
        ``"euclidean"`` or ``"gcd"`` (great-circle on (lon, lat) degrees).
    nugget:
        Non-negative value added to the diagonal of symmetric matrices
        (measurement-error / numerical regularization). The paper's MLE
        uses zero nugget; samplers use a tiny jitter.
    """

    #: Ordered names of the parameters in ``theta`` (subclass-specific).
    param_names: Tuple[str, ...] = ("variance",)

    def __init__(self, variance: float = 1.0, *, metric: str = "euclidean", nugget: float = 0.0):
        self.variance = check_positive(variance, "variance")
        self.metric = metric
        self.nugget = check_positive(nugget, "nugget", strict=False)

    # ----------------------------------------------------------- interface
    def correlation(self, r: np.ndarray) -> np.ndarray:
        """Correlation at distances ``r`` (unit variance). Subclass hook."""
        raise NotImplementedError

    @property
    def theta(self) -> np.ndarray:
        """Parameter vector in the order of :attr:`param_names`."""
        return np.array([getattr(self, name) for name in self.param_names], dtype=np.float64)

    def with_theta(self, theta: Sequence[float]) -> "CovarianceModel":
        """Return a copy of this model with a new parameter vector.

        The optimizer calls this once per objective evaluation; it must be
        cheap and must not mutate ``self``.
        """
        theta = as_float_array(theta, "theta")
        if theta.shape != (len(self.param_names),):
            raise ShapeError(
                f"theta must have {len(self.param_names)} entries "
                f"({', '.join(self.param_names)}), got shape {theta.shape}"
            )
        kwargs = dict(zip(self.param_names, (float(t) for t in theta)))
        return type(self)(**kwargs, metric=self.metric, nugget=self.nugget)

    # ------------------------------------------------------------ assembly
    def __call__(self, r: np.ndarray) -> np.ndarray:
        """Covariance at distances ``r``: ``variance * correlation(r)``."""
        return self.variance * self.correlation(np.asarray(r, dtype=np.float64))

    def matrix(self, x: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
        """Dense covariance matrix between location sets ``x`` and ``y``.

        With ``y=None`` builds the symmetric ``Sigma(theta)`` including the
        nugget on the diagonal.
        """
        x = check_locations(x, "x")
        d = pairwise_distance(x, y, metric=self.metric)
        cov = self(d)
        if y is None and self.nugget > 0.0:
            cov[np.diag_indices_from(cov)] += self.nugget
        return cov

    def tile(
        self,
        x: np.ndarray,
        rows: slice,
        cols: slice,
        y: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Materialize the covariance tile ``Sigma[rows, cols]``.

        This is the *generation codelet* of the tile algorithms: only the
        requested block is ever formed, so TLR paths never allocate the
        full matrix. The nugget is applied to true diagonal entries only
        (which occur in diagonal tiles of the symmetric case).
        """
        x = check_locations(x, "x")
        y_arr = None if y is None else check_locations(y, "y")
        d = pairwise_distance_block(x, rows, cols, y_arr, metric=self.metric)
        return self.tile_from_distances(d, rows, cols, symmetric=y is None)

    def tile_from_distances(
        self,
        d: np.ndarray,
        rows: slice,
        cols: slice,
        *,
        symmetric: bool = True,
    ) -> np.ndarray:
        """Covariance tile from a precomputed distance block.

        This is the theta-dependent half of tile *generation*: distances
        depend only on the (fixed) locations, so a per-fit
        :class:`~repro.linalg.generation.TileDistanceCache` computes each
        block once and every subsequent likelihood evaluation pays only
        for this call — correlation + variance scaling (+ nugget).

        Parameters
        ----------
        d:
            Distance block for ``locations[rows]`` x ``locations[cols]``
            (not mutated).
        rows, cols:
            The global slices the block covers; used to place the nugget
            on true diagonal entries.
        symmetric:
            True when rows and columns index the *same* location set
            (the ``y=None`` case of :meth:`tile`); only then is the
            nugget applied.
        """
        cov = self(d)
        if symmetric and self.nugget > 0.0:
            r0 = rows.start or 0
            c0 = cols.start or 0
            # Global indices that coincide get the nugget.
            ridx = np.arange(r0, r0 + cov.shape[0])
            cidx = np.arange(c0, c0 + cov.shape[1])
            eq = ridx[:, None] == cidx[None, :]
            cov[eq] += self.nugget
        return cov

    def matrix_from_distances(self, d: np.ndarray, *, symmetric: bool = True) -> np.ndarray:
        """Full covariance matrix from a precomputed distance matrix.

        The full-block analogue of :meth:`tile_from_distances`: with the
        ``(n, n)`` distance matrix cached once per fit, each evaluation
        builds ``Sigma(theta)`` without touching :func:`pairwise_distance`.
        ``d`` is not mutated; the result is freshly allocated.
        """
        cov = self(d)
        if symmetric and self.nugget > 0.0:
            cov[np.diag_indices_from(cov)] += self.nugget
        return cov

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(f"{n}={getattr(self, n):.6g}" for n in self.param_names)
        return f"{type(self).__name__}({params}, metric={self.metric!r})"


class MaternCovariance(CovarianceModel):
    """The Matérn model of paper eq. (5) with ``theta = (θ1, θ2, θ3)``.

    Parameters
    ----------
    variance, range_, smoothness:
        :math:`\\theta_1, \\theta_2, \\theta_3` — all strictly positive.

    Examples
    --------
    >>> import numpy as np
    >>> cov = MaternCovariance(1.0, 0.1, 0.5)
    >>> float(cov(np.array(0.0)))
    1.0
    """

    param_names = ("variance", "range_", "smoothness")

    def __init__(
        self,
        variance: float = 1.0,
        range_: float = 0.1,
        smoothness: float = 0.5,
        *,
        metric: str = "euclidean",
        nugget: float = 0.0,
    ):
        super().__init__(variance, metric=metric, nugget=nugget)
        self.range_ = check_positive(range_, "range_")
        self.smoothness = check_positive(smoothness, "smoothness")

    def correlation(self, r: np.ndarray) -> np.ndarray:
        return matern_correlation(r, self.range_, self.smoothness)


class ExponentialCovariance(MaternCovariance):
    """Exponential model ``θ1 exp(-r/θ2)`` — Matérn with ν fixed at 1/2."""

    param_names = ("variance", "range_")

    def __init__(
        self,
        variance: float = 1.0,
        range_: float = 0.1,
        *,
        metric: str = "euclidean",
        nugget: float = 0.0,
    ):
        super().__init__(variance, range_, 0.5, metric=metric, nugget=nugget)


class WhittleCovariance(MaternCovariance):
    """Whittle model ``θ1 (r/θ2) K_1(r/θ2)`` — Matérn with ν fixed at 1."""

    param_names = ("variance", "range_")

    def __init__(
        self,
        variance: float = 1.0,
        range_: float = 0.1,
        *,
        metric: str = "euclidean",
        nugget: float = 0.0,
    ):
        super().__init__(variance, range_, 1.0, metric=metric, nugget=nugget)


class GaussianCovariance(CovarianceModel):
    """Gaussian model ``θ1 exp(-r²/(2 θ2²))`` — the ν → ∞ Matérn limit."""

    param_names = ("variance", "range_")

    def __init__(
        self,
        variance: float = 1.0,
        range_: float = 0.1,
        *,
        metric: str = "euclidean",
        nugget: float = 0.0,
    ):
        super().__init__(variance, metric=metric, nugget=nugget)
        self.range_ = check_positive(range_, "range_")

    def correlation(self, r: np.ndarray) -> np.ndarray:
        return gaussian_correlation(r, self.range_)


class PoweredExponentialCovariance(CovarianceModel):
    """Powered exponential ``θ1 exp(-(r/θ2)^p)`` with ``0 < p <= 2``.

    Included as an additional valid stationary family for tests and
    ablations (it interpolates exponential ``p=1`` and Gaussian ``p=2``).
    """

    param_names = ("variance", "range_", "power")

    def __init__(
        self,
        variance: float = 1.0,
        range_: float = 0.1,
        power: float = 1.0,
        *,
        metric: str = "euclidean",
        nugget: float = 0.0,
    ):
        super().__init__(variance, metric=metric, nugget=nugget)
        self.range_ = check_positive(range_, "range_")
        self.power = check_positive(power, "power")
        if not (0.0 < self.power <= 2.0):
            raise ShapeError(f"power must lie in (0, 2], got {self.power}")

    def correlation(self, r: np.ndarray) -> np.ndarray:
        x = np.asarray(r, dtype=np.float64) / self.range_
        return np.exp(-np.power(x, self.power))
