"""Exact Gaussian-random-field sampling (paper §VIII-D.1).

The Monte-Carlo study generates synthetic measurement vectors from a
known Matérn model *in exact computation* ("we rely on exact computation
on this step to ensure that all techniques are using the same data").
This module reproduces that: sample ``Z ~ N(0, Sigma(theta))`` via a dense
Cholesky factor of the exact covariance.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from ..config import get_config
from ..exceptions import NotPositiveDefiniteError
from ..kernels.covariance import CovarianceModel
from ..utils.rng import SeedLike, as_generator
from ..utils.validation import check_locations

__all__ = ["sample_gaussian_field"]


def sample_gaussian_field(
    locations: np.ndarray,
    model: CovarianceModel,
    seed: SeedLike = None,
    *,
    n_samples: int = 1,
    mean: float = 0.0,
    jitter: float | None = None,
) -> np.ndarray:
    """Draw exact samples of a zero-mean GP at ``locations``.

    Parameters
    ----------
    locations:
        ``(n, d)`` spatial locations.
    model:
        Covariance model providing ``Sigma(theta)``.
    seed:
        RNG seed / generator.
    n_samples:
        Number of independent realizations (the paper uses one location
        set with 100 measurement vectors for Figure 6).
    mean:
        Constant mean added to every sample (paper assumes zero).
    jitter:
        Diagonal regularization for the factorization; defaults to the
        configured ``cholesky_jitter``. The *returned field* is still a
        draw from a valid covariance (Sigma + jitter*I).

    Returns
    -------
    ``(n,)`` array if ``n_samples == 1`` else ``(n_samples, n)``.

    Raises
    ------
    NotPositiveDefiniteError
        If the covariance cannot be factorized even with jitter.
    """
    x = check_locations(locations, "locations")
    rng = as_generator(seed)
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    if jitter is None:
        jitter = get_config().cholesky_jitter
    sigma = model.matrix(x)
    if jitter > 0.0:
        sigma[np.diag_indices_from(sigma)] += jitter
    try:
        chol = sla.cholesky(sigma, lower=True, check_finite=False)
    except sla.LinAlgError as exc:
        raise NotPositiveDefiniteError(
            f"covariance for {model!r} is not positive definite even with "
            f"jitter {jitter:g}; locations may contain near-duplicates"
        ) from exc
    white = rng.standard_normal(size=(x.shape[0], n_samples))
    fields = (chol @ white).T + mean
    return fields[0] if n_samples == 1 else fields
