"""Closed-form performance estimates for paper-scale problem sizes.

Aggregates the exact per-kernel flop/byte counts of :mod:`.flops` over
the task population of one MLE iteration (generation + factorization +
solve + logdet) or one prediction operation, applies the roofline rates
of a :class:`~repro.perfmodel.machine.MachineSpec` or
:class:`~repro.perfmodel.cluster.ClusterSpec`, and accounts for:

* parallelism: estimated makespan = max(total-work time at aggregate
  rate, critical-path time at single-core rate);
* the fork-join penalty of the Full-block LAPACK baseline (lower
  sustained efficiency — Figure 3's Full-block > Full-tile gap);
* communication on distributed runs (2-D block-cyclic panel multicasts,
  overlapped with computation by the asynchronous runtime, so the
  makespan takes the max of compute and comm);
* per-node memory, flagging out-of-memory configurations — these are
  the *missing points* in the paper's Figure 4.

TLR costs take tile ranks from a :class:`~repro.perfmodel.rankmodel.RankModel`;
ranks depend only on tile-index separation after Morton ordering, which
lets the ``O(nt^3)`` task population be summed in ``O(nt^2)`` vectorized
arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..exceptions import ConfigurationError
from .cluster import ClusterSpec
from .costmodel import TaskCost
from .flops import (
    KERNEL_EVAL_FLOPS,
    compression_flops,
    dense_tile_bytes,
    gemm_flops,
    lr_syrk_flops,
    lr_tile_bytes,
    lr_trsm_flops,
    potrf_flops,
    syrk_flops,
    trsm_flops,
)
from .machine import MachineSpec
from .rankmodel import DEFAULT_RANK_MODEL, RankModel

__all__ = ["PerfEstimate", "estimate_mle_iteration", "estimate_prediction"]

#: Workspace multiplier on the matrix footprint (runtime buffers, RHS,
#: compression scratch).
MEMORY_OVERHEAD = 1.15

#: Low-rank kernels re-stream their operands during QR/SVD recompression;
#: the byte counts of LR task classes are scaled by this pass count.
LR_TRAFFIC_FACTOR = 3.0

#: Distributed TLR efficiency derating. The paper (§VIII-C) observes that
#: TLR's low arithmetic intensity turns latency-bound across remote node
#: memories, with "significant overheads which cannot be compensated
#: since computation is very limited". Calibrated so the modeled
#: distributed speedup tops out near the paper's reported ~5X.
DIST_TLR_EFFICIENCY = 0.30


@dataclass
class PerfEstimate:
    """Modeled execution profile of one operation.

    Attributes
    ----------
    time_s:
        Estimated wall-clock seconds.
    flops, bytes:
        Aggregate flop count and memory traffic.
    matrix_bytes:
        Resident size of the (possibly compressed) covariance matrix.
    mem_per_node_bytes:
        Peak modeled per-node memory (equals ``matrix_bytes`` times the
        workspace overhead on shared memory).
    oom:
        True when the configuration does not fit in memory — the paper's
        Figure 4 omits exactly these points.
    breakdown:
        Stage name -> seconds.
    """

    time_s: float
    flops: float
    bytes: float
    matrix_bytes: float
    mem_per_node_bytes: float
    oom: bool
    breakdown: Dict[str, float] = field(default_factory=dict)


# --------------------------------------------------------------------------
# class-level cost aggregation
# --------------------------------------------------------------------------


def _dense_tile_costs(nt: int, nb: int) -> Dict[str, TaskCost]:
    """Aggregate costs of the dense tile Cholesky task population."""
    n_trsm = nt * (nt - 1) / 2.0
    n_syrk = n_trsm
    a = np.arange(2, nt, dtype=np.float64)
    n_gemm = float(np.sum((nt - a) * (a - 1))) if nt > 2 else 0.0
    tb = dense_tile_bytes(nb)
    return {
        "potrf": TaskCost(nt * potrf_flops(nb), nt * 2 * tb),
        "trsm": TaskCost(n_trsm * trsm_flops(nb), n_trsm * 3 * tb),
        "syrk": TaskCost(n_syrk * syrk_flops(nb), n_syrk * 3 * tb),
        "gemm": TaskCost(n_gemm * gemm_flops(nb, nb, nb), n_gemm * 4 * tb),
    }


def _lr_gemm_flops_vec(nb: int, k_ij: np.ndarray, k_ik: np.ndarray, k_jk: np.ndarray) -> np.ndarray:
    """Vectorized copy of :func:`repro.perfmodel.flops.lr_gemm_flops`."""
    kk = k_ij + k_ik
    product = 4.0 * k_ik * k_jk * nb
    rounding = 8.0 * nb * kk * kk + 22.0 * kk**3
    return product + rounding


def _tlr_tile_costs(
    nt: int, nb: int, acc: float, rank_model: RankModel
) -> tuple[Dict[str, TaskCost], np.ndarray]:
    """Aggregate costs of the TLR Cholesky task population.

    Returns the per-class costs and the separation-indexed rank array
    (``ranks[d-1]`` is the rank at separation ``d``).
    """
    if nt < 2:
        return (
            {"potrf": TaskCost(nt * potrf_flops(nb), nt * 2 * dense_tile_bytes(nb))},
            np.zeros(0, dtype=np.int64),
        )
    ranks = rank_model.rank_array(nt, acc, nb).astype(np.float64)
    d = np.arange(1, nt, dtype=np.float64)
    counts = nt - d  # tiles at separation d in the lower triangle
    tb_dense = dense_tile_bytes(nb)
    lr_bytes = 8.0 * 2.0 * nb * ranks

    trsm_f = float(np.sum(counts * lr_trsm_flops(nb, ranks)))
    trsm_b = float(np.sum(counts * (tb_dense + 2 * lr_bytes)))
    syrk_f = float(np.sum(counts * lr_syrk_flops(nb, ranks)))
    syrk_b = float(np.sum(counts * (2 * tb_dense + lr_bytes)))

    # GEMM sweep: for separations a > b >= 1 the update uses ranks
    # (r[a-b], r[a], r[b]) and occurs (nt - a) times across iterations k.
    gemm_f = 0.0
    gemm_b = 0.0
    r = ranks  # r[d-1] = rank at separation d
    for a in range(2, nt):
        b = np.arange(1, a, dtype=np.int64)
        k_ij = r[a - b - 1]
        k_ik = np.full(b.size, r[a - 1])
        k_jk = r[b - 1]
        fl = _lr_gemm_flops_vec(nb, k_ij, k_ik, k_jk)
        by = 8.0 * 2.0 * nb * (2 * k_ij + k_ik + k_jk)
        mult = float(nt - a)
        gemm_f += mult * float(np.sum(fl))
        gemm_b += mult * float(np.sum(by))

    return (
        {
            "potrf": TaskCost(nt * potrf_flops(nb), nt * 2 * tb_dense),
            "trsm": TaskCost(trsm_f, LR_TRAFFIC_FACTOR * trsm_b),
            "syrk": TaskCost(syrk_f, LR_TRAFFIC_FACTOR * syrk_b),
            "gemm": TaskCost(gemm_f, LR_TRAFFIC_FACTOR * gemm_b),
        },
        ranks.astype(np.int64),
    )


def _generation_costs(
    n: int, nb: int, variant: str, acc: float, rank_model: RankModel
) -> TaskCost:
    """Covariance generation (+ compression for TLR)."""
    nt = -(-n // nb)
    lower_elems = n * (n + 1) / 2.0 if variant == "full-block" else None
    if variant == "full-block":
        assert lower_elems is not None
        # LAPACK path generates the full symmetric matrix.
        return TaskCost(KERNEL_EVAL_FLOPS * n * n, 8.0 * n * n)
    gen_elems = sum(
        min(nb, n - i * nb) * min(nb, n - j * nb) for i in range(nt) for j in range(i + 1)
    )
    cost = TaskCost(KERNEL_EVAL_FLOPS * gen_elems, 8.0 * gen_elems)
    if variant == "tlr" and nt > 1:
        ranks = rank_model.rank_array(nt, acc, nb).astype(np.float64)
        d = np.arange(1, nt, dtype=np.float64)
        counts = nt - d
        comp_f = float(np.sum(counts * 6.0 * nb * nb * np.maximum(ranks, 1)))
        comp_b = float(np.sum(counts * (dense_tile_bytes(nb) + 8.0 * 2 * nb * ranks)))
        cost = cost + TaskCost(comp_f, comp_b)
    return cost


def _solve_cost(n: int, nb: int, variant: str, ranks: np.ndarray, n_rhs: int) -> TaskCost:
    """Forward+backward triangular solve with ``n_rhs`` right-hand sides."""
    nt = -(-n // nb)
    if variant == "full-block":
        return TaskCost(2.0 * n * n * n_rhs, 8.0 * n * n)
    diag = nt * trsm_flops(nb, n_rhs) * 2
    if nt < 2 or variant == "full-tile":
        off = nt * (nt - 1) / 2.0 * gemm_flops(nb, nb, n_rhs) * 2
        by = 8.0 * (n * n / 2.0 + 2 * n * n_rhs)
        return TaskCost(diag + off, by)
    d = np.arange(1, nt, dtype=np.float64)
    counts = nt - d
    off = float(np.sum(counts * 4.0 * nb * ranks * n_rhs)) * 2
    by = float(np.sum(counts * 8.0 * 2 * nb * ranks)) + 8.0 * 2 * n * n_rhs
    return TaskCost(diag + off, by)


def _matrix_bytes(n: int, nb: int, variant: str, ranks: np.ndarray) -> float:
    """Resident covariance bytes for each storage variant."""
    nt = -(-n // nb)
    if variant == "full-block":
        return 8.0 * n * n
    if variant == "full-tile":
        # Chameleon allocates the full square tile descriptor (the paper's
        # n = 1M example: 10^12 double-precision elements).
        return 8.0 * n * n
    diag = nt * dense_tile_bytes(nb)
    if nt < 2:
        return diag
    d = np.arange(1, nt, dtype=np.float64)
    counts = nt - d
    return diag + float(np.sum(counts * 8.0 * 2 * nb * ranks))


# --------------------------------------------------------------------------
# roofline aggregation
# --------------------------------------------------------------------------


def _class_seconds(
    cost: TaskCost, machine: MachineSpec, cores: int, efficiency: float
) -> float:
    """Roofline seconds for one task class on ``cores`` of a machine."""
    compute = cost.flops / (machine.peak_gflops * efficiency * 1e9 * cores / machine.cores)
    memory = cost.bytes / (machine.mem_bw_gbs * 1e9 * min(1.0, cores / machine.cores + 0.25))
    return max(compute, memory)


def _critical_path_seconds(
    nt: int, nb: int, variant: str, ranks: np.ndarray, machine: MachineSpec
) -> float:
    """Panel critical path: one POTRF + one TRSM per iteration.

    The asynchronous runtime's lookahead overlaps each iteration's
    trailing updates with subsequent panels (the design point of tile
    algorithms, §V), so only the panel chain serializes. POTRF runs at
    dense single-core rate; the TLR TRSM at the low-rank rate.
    """
    per_core_dense = machine.peak_gflops / machine.cores * machine.eff_dense * 1e9
    per_core_lr = machine.peak_gflops / machine.cores * machine.eff_lr * 1e9
    if variant == "tlr" and ranks.size:
        step = potrf_flops(nb) / per_core_dense + lr_trsm_flops(nb, float(ranks[0])) / per_core_lr
    else:
        step = (potrf_flops(nb) + trsm_flops(nb)) / per_core_dense
    return nt * step


# --------------------------------------------------------------------------
# public estimators
# --------------------------------------------------------------------------


def estimate_mle_iteration(
    n: int,
    *,
    variant: str = "tlr",
    nb: int = 1900,
    acc: float = 1e-9,
    machine: Optional[MachineSpec] = None,
    cluster: Optional[ClusterSpec] = None,
    rank_model: RankModel = DEFAULT_RANK_MODEL,
    n_rhs: int = 1,
) -> PerfEstimate:
    """Model the time and memory of one MLE iteration (paper Figs. 3-4).

    Exactly one of ``machine`` (shared memory, Fig. 3) or ``cluster``
    (distributed, Fig. 4) must be given.

    Parameters
    ----------
    n:
        Number of spatial locations.
    variant:
        ``"full-block"``, ``"full-tile"`` or ``"tlr"``.
    nb:
        Tile size (paper: 560 dense / 1900 TLR on Shaheen-2).
    acc:
        TLR accuracy threshold.
    rank_model:
        Tile-rank model for TLR variants.
    n_rhs:
        Right-hand sides in the solve stage (1 for the MLE).
    """
    if (machine is None) == (cluster is None):
        raise ConfigurationError("provide exactly one of machine= or cluster=")
    node = machine if machine is not None else cluster.node  # type: ignore[union-attr]
    nt = -(-n // nb)

    if variant == "full-block":
        chol = {"potrf": TaskCost(n**3 / 3.0, 8.0 * n * n)}
        ranks = np.zeros(0, dtype=np.int64)
        eff = node.eff_block
    elif variant == "full-tile":
        chol = _dense_tile_costs(nt, nb)
        ranks = np.zeros(0, dtype=np.int64)
        eff = node.eff_dense
    elif variant == "tlr":
        chol, ranks = _tlr_tile_costs(nt, nb, acc, rank_model)
        eff = node.eff_lr
    else:
        raise ConfigurationError(f"unknown variant {variant!r}")

    gen = _generation_costs(n, nb, variant, acc, rank_model)
    solve = _solve_cost(n, nb, variant, ranks, n_rhs)
    matrix_bytes = _matrix_bytes(n, nb, variant, ranks)

    if machine is not None:
        cores = machine.cores
        breakdown = {
            "generation": _class_seconds(gen, machine, cores, machine.gen_efficiency),
            "solve": _class_seconds(solve, machine, cores, eff),
        }
        chol_s = sum(_class_seconds(c, machine, cores, eff) for c in chol.values())
        cp_s = _critical_path_seconds(nt, nb, variant, ranks, machine)
        breakdown["factorization"] = max(chol_s, cp_s)
        total = sum(breakdown.values())
        mem = matrix_bytes * MEMORY_OVERHEAD
        oom = mem > machine.mem_bytes
        agg = gen + solve
        for c in chol.values():
            agg = agg + c
        return PerfEstimate(total, agg.flops, agg.bytes, matrix_bytes, mem, oom, breakdown)

    # ---------------------------------------------------------- distributed
    assert cluster is not None
    p = cluster.n_nodes
    cores = cluster.total_cores
    breakdown = {
        "generation": _class_seconds(gen, node, node.cores, node.gen_efficiency) / p,
        "solve": _class_seconds(solve, node, node.cores, eff) / min(p, max(1, nt)),
    }
    chol_s = sum(_class_seconds(c, node, node.cores, eff) for c in chol.values()) / p
    cp_s = _critical_path_seconds(nt, nb, variant, ranks, node)
    if variant == "tlr":
        # Latency-bound regime across remote memories (§VIII-C): both the
        # aggregate throughput and the panel pipeline lose efficiency.
        chol_s /= DIST_TLR_EFFICIENCY
        cp_s /= DIST_TLR_EFFICIENCY
    # 2-D block-cyclic panel multicast: every panel tile reaches ~sqrt(P)
    # nodes; per-node received volume and message count set the comm time.
    pr, pc = cluster.grid_shape()
    if variant == "tlr" and ranks.size:
        mean_tile_bytes = float(np.mean(8.0 * 2 * nb * ranks))
    else:
        mean_tile_bytes = dense_tile_bytes(nb)
    n_panel_tiles = nt * (nt - 1) / 2.0
    per_node_volume = n_panel_tiles * mean_tile_bytes * (pr + pc) / 2.0 / p
    per_node_msgs = n_panel_tiles * (pr + pc) / 2.0 / p
    comm_s = per_node_volume / (cluster.net_bw_gbs * 1e9) + per_node_msgs * (
        cluster.net_latency_us * 1e-6
    )
    # The asynchronous runtime overlaps communication with computation.
    breakdown["factorization"] = max(chol_s, cp_s, comm_s)
    breakdown["communication_overlapped"] = comm_s
    total = breakdown["generation"] + breakdown["solve"] + breakdown["factorization"]
    mem_per_node = matrix_bytes * MEMORY_OVERHEAD / p
    oom = mem_per_node > node.mem_bytes
    agg = gen + solve
    for c in chol.values():
        agg = agg + c
    return PerfEstimate(total, agg.flops, agg.bytes, matrix_bytes, mem_per_node, oom, breakdown)


def estimate_prediction(
    n: int,
    m: int = 100,
    *,
    variant: str = "tlr",
    nb: int = 1900,
    acc: float = 1e-9,
    machine: Optional[MachineSpec] = None,
    cluster: Optional[ClusterSpec] = None,
    rank_model: RankModel = DEFAULT_RANK_MODEL,
) -> PerfEstimate:
    """Model the prediction operation (paper Fig. 5): factor + m-RHS solves.

    The factorization of ``Sigma_22`` dominates for small ``m`` (the
    paper's 100 unknowns), so these curves track the MLE-iteration
    curves — the observation made in §VIII-C.
    """
    base = estimate_mle_iteration(
        n,
        variant=variant,
        nb=nb,
        acc=acc,
        machine=machine,
        cluster=cluster,
        rank_model=rank_model,
        n_rhs=m,
    )
    # Cross-covariance application Sigma_12 @ alpha: m x n GEMV-like work.
    node = machine if machine is not None else cluster.node  # type: ignore[union-attr]
    scale = 1 if machine is not None else cluster.n_nodes  # type: ignore[union-attr]
    extra = TaskCost(2.0 * m * n + KERNEL_EVAL_FLOPS * m * n, 8.0 * m * n)
    extra_s = _class_seconds(extra, node, node.cores, node.gen_efficiency) / scale
    base.breakdown["cross_covariance"] = extra_s
    base.time_s += extra_s
    base.flops += extra.flops
    base.bytes += extra.bytes
    return base
