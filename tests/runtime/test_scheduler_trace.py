"""Unit tests for ready-queue policies and the trace recorder."""

from __future__ import annotations

import pytest

from repro.runtime.scheduler import FifoQueue, LifoQueue, PriorityReadyQueue, make_queue
from repro.runtime.task import AccessMode, Task
from repro.runtime.trace import TraceEvent, TraceRecorder


def t(name, priority=0):
    return Task(lambda: None, [], name=name, priority=priority)


class TestQueues:
    def test_fifo_order(self):
        q = FifoQueue()
        a, b, c = t("a"), t("b"), t("c")
        for x in (a, b, c):
            q.push(x)
        assert [q.pop(), q.pop(), q.pop()] == [a, b, c]
        assert q.pop() is None

    def test_lifo_order(self):
        q = LifoQueue()
        a, b, c = t("a"), t("b"), t("c")
        for x in (a, b, c):
            q.push(x)
        assert [q.pop(), q.pop(), q.pop()] == [c, b, a]

    def test_priority_order_with_fifo_ties(self):
        q = PriorityReadyQueue()
        lo1, hi, lo2 = t("lo1", 1), t("hi", 9), t("lo2", 1)
        for x in (lo1, hi, lo2):
            q.push(x)
        assert q.pop() is hi
        assert q.pop() is lo1  # tie broken by insertion
        assert q.pop() is lo2
        assert len(q) == 0

    def test_len(self):
        q = FifoQueue()
        assert len(q) == 0
        q.push(t("x"))
        assert len(q) == 1

    def test_factory(self):
        assert isinstance(make_queue("fifo"), FifoQueue)
        assert isinstance(make_queue("lifo"), LifoQueue)
        assert isinstance(make_queue("priority"), PriorityReadyQueue)
        with pytest.raises(ValueError):
            make_queue("random")


class TestTraceRecorder:
    def _recorder(self):
        rec = TraceRecorder()
        rec.record(TraceEvent(1, "potrf", 0, 0.0, 1.0))
        rec.record(TraceEvent(2, "trsm", 1, 0.5, 2.0))
        rec.record(TraceEvent(3, "trsm", 0, 1.0, 1.5))
        return rec

    def test_makespan_and_busy(self):
        rec = self._recorder()
        assert rec.makespan() == pytest.approx(2.0)
        assert rec.busy_time() == pytest.approx(1.0 + 1.5 + 0.5)

    def test_utilization_bounds(self):
        rec = self._recorder()
        u = rec.utilization(2)
        assert 0.0 < u <= 1.0
        assert rec.utilization(0) == 0.0
        assert TraceRecorder().utilization(4) == 0.0

    def test_by_codelet(self):
        rec = self._recorder()
        summary = rec.by_codelet()
        assert summary["trsm"][0] == 2
        assert summary["potrf"] == (1, pytest.approx(1.0))

    def test_gantt_rows_normalized(self):
        rec = self._recorder()
        rows = rec.gantt_rows()
        assert rows[0][2] == pytest.approx(0.0)
        assert all(r[3] >= r[2] for r in rows)

    def test_clear(self):
        rec = self._recorder()
        rec.clear()
        assert rec.events == []
