"""Shared infrastructure for experiment drivers: tables, scaling, output.

The paper's figures are line plots and boxplots; a text reproduction
renders each as an aligned table whose columns are the plot's series.
``ResultTable.render()`` produces that text and ``save()`` writes both a
``.txt`` and a machine-readable ``.csv`` under the results directory.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

__all__ = ["ResultTable", "results_dir", "bench_scale", "fmt"]


def results_dir() -> Path:
    """Directory for rendered experiment outputs (created on demand).

    Defaults to ``<cwd>/results``; override with ``REPRO_RESULTS_DIR``.
    """
    path = Path(os.environ.get("REPRO_RESULTS_DIR", "results"))
    path.mkdir(parents=True, exist_ok=True)
    return path


def bench_scale() -> str:
    """Benchmark scale: ``"quick"`` (default) or ``"full"``.

    Controlled by ``REPRO_BENCH_SCALE``; experiment drivers pick problem
    sizes/replicates accordingly.
    """
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    return "full" if scale == "full" else "quick"


def fmt(value: object, *, digits: int = 3) -> str:
    """Uniform cell formatting: floats to ``digits`` significant places,
    ``None`` as the paper's missing-point marker ``OOM/-``."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 10 ** (digits + 2) or abs(value) < 10 ** (-digits):
            return f"{value:.{digits}e}"
        return f"{value:.{digits}f}"
    return str(value)


@dataclass
class ResultTable:
    """A titled table of experiment results.

    Attributes
    ----------
    title:
        Heading rendered above the table (e.g. ``"Figure 3(a) ..."``).
    headers:
        Column names.
    rows:
        Row cell lists; cells may be numbers, strings or ``None``
        (rendered as ``-``, the paper's missing/OOM marker).
    notes:
        Free-form footnotes rendered below the table.
    """

    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append one row (must match the header count)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        """Append a footnote line."""
        self.notes.append(note)

    def render(self, *, digits: int = 3) -> str:
        """Aligned, human-readable text rendering."""
        cells = [[fmt(c, digits=digits) for c in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in cells:
            for i, c in enumerate(row):
                widths[i] = max(widths[i], len(c))
        sep = "  "
        lines = [self.title, "=" * len(self.title)]
        lines.append(sep.join(h.ljust(widths[i]) for i, h in enumerate(self.headers)))
        lines.append(sep.join("-" * w for w in widths))
        for row in cells:
            lines.append(sep.join(c.rjust(widths[i]) for i, c in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines) + "\n"

    def save(self, name: str, *, directory: Optional[Path] = None) -> Path:
        """Write ``<name>.txt`` and ``<name>.csv``; returns the .txt path."""
        directory = directory or results_dir()
        txt_path = directory / f"{name}.txt"
        txt_path.write_text(self.render())
        with open(directory / f"{name}.csv", "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(self.headers)
            for row in self.rows:
                writer.writerow(["" if c is None else c for c in row])
        return txt_path


def save_tables(tables: Sequence[ResultTable], name: str) -> Path:
    """Concatenate several tables into one ``.txt`` report file."""
    directory = results_dir()
    path = directory / f"{name}.txt"
    path.write_text("\n".join(t.render() for t in tables))
    return path
