"""Tests for exact Gaussian-random-field sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.fields import sample_gaussian_field
from repro.data.synthetic import generate_irregular_grid
from repro.exceptions import NotPositiveDefiniteError
from repro.kernels import MaternCovariance


class TestSampling:
    def test_single_sample_shape(self, small_locations, matern_model):
        z = sample_gaussian_field(small_locations, matern_model, seed=0)
        assert z.shape == (small_locations.shape[0],)

    def test_multi_sample_shape(self, small_locations, matern_model):
        z = sample_gaussian_field(small_locations, matern_model, seed=0, n_samples=5)
        assert z.shape == (5, small_locations.shape[0])

    def test_reproducible(self, small_locations, matern_model):
        a = sample_gaussian_field(small_locations, matern_model, seed=3)
        b = sample_gaussian_field(small_locations, matern_model, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_mean_offset(self, small_locations, matern_model):
        z0 = sample_gaussian_field(small_locations, matern_model, seed=4)
        z5 = sample_gaussian_field(small_locations, matern_model, seed=4, mean=5.0)
        np.testing.assert_allclose(z5 - z0, 5.0, atol=1e-10)

    def test_marginal_variance_statistics(self):
        # With many replicates at a handful of points, the sample variance
        # should approach theta1.
        locs = generate_irregular_grid(16, seed=0)
        model = MaternCovariance(2.5, 0.1, 0.5)
        z = sample_gaussian_field(locs, model, seed=1, n_samples=4000)
        var = z.var(axis=0)
        np.testing.assert_allclose(var, 2.5, rtol=0.15)

    def test_correlation_structure(self):
        # Strongly correlated nearby points must have high sample correlation.
        locs = np.array([[0.5, 0.5], [0.5001, 0.5], [0.95, 0.05]])
        model = MaternCovariance(1.0, 0.3, 0.5)
        z = sample_gaussian_field(locs, model, seed=2, n_samples=3000)
        corr = np.corrcoef(z.T)
        assert corr[0, 1] > 0.99
        assert corr[0, 2] < corr[0, 1]

    def test_duplicate_points_need_jitter(self):
        locs = np.array([[0.1, 0.1], [0.1, 0.1], [0.5, 0.5]])
        model = MaternCovariance(1.0, 0.1, 0.5)
        with pytest.raises(NotPositiveDefiniteError):
            sample_gaussian_field(locs, model, seed=0, jitter=0.0)
        # Jitter rescues the degenerate case.
        z = sample_gaussian_field(locs, model, seed=0, jitter=1e-8)
        assert z.shape == (3,)

    def test_invalid_n_samples(self, small_locations, matern_model):
        with pytest.raises(ValueError):
            sample_gaussian_field(small_locations, matern_model, n_samples=0)
