#!/usr/bin/env python
"""Chaos engineering demo: break the serving stack on purpose, watch it hold.

A walk through the resilience layer, end to end:

1. **Serve** a persisted model from a multi-process
   :class:`~repro.serving.ServingServer`.
2. **Arm a deterministic fault plan** — the 30th pipe message is
   delayed, the 50th engine call raises, the 80th pipe message
   SIGKILLs its worker. Seeded and hit-counted across processes, so
   this script misbehaves *identically* on every run.
3. **Hammer** the endpoint with retrying clients while the faults
   fire: the router respawns the killed worker, circuit breakers track
   engine failures, and every successful answer still bit-matches the
   reference — chaos degrades service, it never corrupts it.
4. **Corrupt a bundle on disk** and watch the registry quarantine it
   and fall back to the last-known-good engine generation, with the
   response flagged ``degraded``.
5. **Inspect the wreckage**: the plan's fired-fault journal and the
   server's breaker/admission metrics reconcile with what happened.

Run:  python examples/chaos_demo.py
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

import numpy as np

from repro.data import generate_irregular_grid, sample_gaussian_field, sort_locations
from repro.kernels import MaternCovariance
from repro.mle import PredictionEngine
from repro.resilience import FaultPlan, FaultRule, RetryPolicy, arm, disarm
from repro.serving import ModelBundle, ServingClient, ServingServer

N_TRAIN = 400
N_CLIENTS = 4
N_REQUESTS = 150


def build_bundle(root: Path, name: str, theta) -> Path:
    locs, _, _ = sort_locations(generate_irregular_grid(N_TRAIN, seed=0))
    model = MaternCovariance(*theta)
    z = sample_gaussian_field(locs, model, seed=1)
    bundle = ModelBundle(
        model=model, locations=locs, z=z, variant="full-block", tile_size=100
    )
    bundle.factor = bundle.build_engine().factor()
    return bundle.save(root / f"{name}.bundle")


def main() -> None:
    tmp = Path(tempfile.mkdtemp(prefix="chaos_demo_"))
    path_a = build_bundle(tmp, "a", (1.0, 0.1, 0.5))
    path_b = build_bundle(tmp, "b", (1.6, 0.15, 0.8))
    targets = np.ascontiguousarray(np.random.default_rng(7).random((24, 2)))
    ref_a = PredictionEngine.from_bundle(path_a).predict(targets)

    print("=== arming the fault plan (seeded, cross-process) ===")
    plan = arm(
        FaultPlan(
            rules=[
                FaultRule(site="worker.pipe", action="delay", after=30, count=3,
                          delay=0.05),
                FaultRule(site="engine.predict", action="raise", after=50, count=2),
                FaultRule(site="worker.pipe", action="kill", after=80),
            ],
            seed=42,
            state_dir=tmp / "chaos",
        ),
        propagate=True,  # worker processes arm themselves from the env
    )
    for rule in plan.rules:
        print(f"  {rule.site:>16}: {rule.action} on hits "
              f"{rule.after + 1}..{rule.after + rule.count}")

    # One worker so both models share a registry: the demo's max_models=1
    # LRU eviction is what forces "a" to rehydrate from (corrupted) disk.
    with ServingServer(
        {"a": str(path_a), "b": str(path_b)},
        num_workers=1,
        max_worker_restarts=4,
        registry_options={"max_models": 1},
        service_options={"batch_window": 0.0},
        enable_fitting=False,
    ) as server:
        print(f"\n=== hammering {server.url} with {N_CLIENTS} retrying clients ===")
        answers, errors = [], []
        lock = threading.Lock()
        countdown = [N_REQUESTS]

        def client_loop() -> None:
            policy = RetryPolicy(max_attempts=3, base_delay=0.02, seed=5)
            with ServingClient(server.url, retry_policy=policy) as cli:
                while True:
                    with lock:
                        if countdown[0] <= 0:
                            return
                        countdown[0] -= 1
                    try:
                        got = cli.predict("a", targets, deadline=30.0)
                        with lock:
                            answers.append(got)
                    except Exception as exc:  # noqa: BLE001 - demo tally
                        with lock:
                            errors.append(exc)

        threads = [threading.Thread(target=client_loop) for _ in range(N_CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        wrong = sum(not np.array_equal(got, ref_a) for got in answers)
        print(f"  {len(answers)} answered, {len(errors)} errored, {wrong} wrong")
        print(f"  worker respawns: {server.n_worker_restarts}")
        assert wrong == 0, "chaos must never corrupt an answer"

        print("\n=== corrupting a's bundle on disk ===")
        with ServingClient(server.url) as cli:
            cli.predict("b", targets)  # max_models=1: evicts a's warm engine
            payload = path_a / "arrays.npz"
            data = bytearray(payload.read_bytes())
            data[len(data) // 2] ^= 0xFF
            payload.write_bytes(bytes(data))
            value, flags = cli.predict("a", targets, detail=True)
            print(f"  degraded={flags['degraded']}  "
                  f"bit-identical to last-known-good: {np.array_equal(value, ref_a)}")
            assert flags["degraded"] and np.array_equal(value, ref_a)
            quarantined = sorted(p.name for p in tmp.glob("a.bundle.corrupt*"))
            print(f"  quarantined: {quarantined}")

            print("\n=== the wreckage, reconciled ===")
            for event in plan.fired():
                print(f"  fired: {event['site']:>16} hit {event['hit']:>3} "
                      f"-> {event['action']} (pid {event['pid']})")
            metrics = cli.metrics()
            print(f"  admission: {metrics['admission']}")
            print(f"  worker breakers: "
                  f"{ {k: v['state'] for k, v in metrics['worker_breakers'].items()} }")
    disarm()
    print("\ndone: kills respawned, corruption quarantined, zero wrong answers.")


if __name__ == "__main__":
    main()
