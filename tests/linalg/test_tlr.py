"""Tests for the TLR matrix format, Cholesky, solves, and matvec."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import generate_irregular_grid, sort_locations
from repro.exceptions import NotPositiveDefiniteError, ShapeError
from repro.kernels import MaternCovariance
from repro.linalg.tlr_cholesky import logdet_from_tlr_factor, tlr_cholesky
from repro.linalg.tlr_matrix import TLRMatrix
from repro.linalg.tlr_matvec import tlr_symmetric_matvec
from repro.linalg.tlr_solve import tlr_cholesky_solve, tlr_solve_triangular
from repro.runtime import Runtime


@pytest.fixture(scope="module")
def setup():
    locs = generate_irregular_grid(225, seed=17)
    locs, _, _ = sort_locations(locs)
    model = MaternCovariance(1.0, 0.1, 0.5)
    sigma = model.matrix(locs)
    return locs, model, sigma


class TestTLRMatrix:
    @pytest.mark.parametrize("acc", [1e-5, 1e-9])
    def test_reconstruction_error(self, setup, acc):
        _, _, sigma = setup
        tlr = TLRMatrix.from_dense(sigma, 45, acc=acc)
        err = np.abs(tlr.to_dense() - sigma).max()
        # Per-tile spectral contract implies elementwise closeness.
        assert err <= 20 * acc

    def test_from_kernel_matches_from_dense(self, setup):
        locs, model, sigma = setup
        t1 = TLRMatrix.from_dense(sigma, 50, acc=1e-8)
        t2 = TLRMatrix.from_generator(
            225, 50, lambda rs, cs: model.tile(locs, rs, cs), acc=1e-8
        )
        # Tile-wise kernel evaluation and dense slicing differ by float
        # rounding, which can flip a near-threshold singular value; both
        # must satisfy the accuracy contract against the true matrix.
        np.testing.assert_allclose(t1.to_dense(), sigma, atol=2e-7)
        np.testing.assert_allclose(t2.to_dense(), sigma, atol=2e-7)

    def test_rank_matrix_symmetric(self, setup):
        _, _, sigma = setup
        tlr = TLRMatrix.from_dense(sigma, 45, acc=1e-7)
        rm = tlr.rank_matrix()
        np.testing.assert_array_equal(rm, rm.T)
        assert np.all(np.diag(rm) == -1)
        assert rm.max() == tlr.max_rank()

    def test_rank_decays_with_separation(self, setup):
        _, _, sigma = setup
        tlr = TLRMatrix.from_dense(sigma, 45, acc=1e-7)
        rm = tlr.rank_matrix()
        nt = tlr.nt
        near = np.mean([rm[i, i - 1] for i in range(1, nt)])
        far = rm[nt - 1, 0]
        assert far <= near

    def test_ranks_grow_with_accuracy(self, setup):
        _, _, sigma = setup
        loose = TLRMatrix.from_dense(sigma, 45, acc=1e-3)
        tight = TLRMatrix.from_dense(sigma, 45, acc=1e-11)
        assert tight.mean_rank() > loose.mean_rank()
        assert tight.nbytes > loose.nbytes

    def test_memory_accounting(self, setup):
        _, _, sigma = setup
        tlr = TLRMatrix.from_dense(sigma, 45, acc=1e-7)
        assert tlr.dense_nbytes() == sum(
            tlr.grid.tile_size(i) * tlr.grid.tile_size(j) * 8
            for i in range(tlr.nt)
            for j in range(i + 1)
        )
        assert tlr.nbytes > 0
        assert tlr.compression_ratio() == pytest.approx(
            tlr.dense_nbytes() / tlr.nbytes
        )

    def test_rank_accessor(self, setup):
        _, _, sigma = setup
        tlr = TLRMatrix.from_dense(sigma, 45, acc=1e-7)
        assert tlr.rank(1, 0) == tlr.rank(0, 1)
        with pytest.raises(ShapeError):
            tlr.rank(2, 2)

    def test_copy_independent(self, setup):
        _, _, sigma = setup
        tlr = TLRMatrix.from_dense(sigma, 45, acc=1e-7)
        dup = tlr.copy()
        dup.diag[0][:] = 0.0
        assert tlr.diag[0].max() > 0.0

    def test_bad_generator_shape(self):
        with pytest.raises(ShapeError):
            TLRMatrix.from_generator(20, 5, lambda rs, cs: np.zeros((1, 1)), acc=1e-6)

    def test_non_square_rejected(self, rng):
        with pytest.raises(ShapeError):
            TLRMatrix.from_dense(rng.random((4, 5)), 2, acc=1e-6)


class TestTLRCholesky:
    @pytest.mark.parametrize("acc,tol", [(1e-6, 1e-4), (1e-9, 1e-7)])
    def test_factor_accuracy(self, setup, acc, tol):
        _, _, sigma = setup
        tlr = TLRMatrix.from_dense(sigma, 45, acc=acc)
        tlr_cholesky(tlr)
        ldense = np.tril(_tlr_factor_to_dense(tlr))
        recon = ldense @ ldense.T
        err = np.abs(recon - sigma).max() / np.abs(sigma).max()
        assert err <= tol * 50

    def test_logdet_close_to_exact(self, setup):
        _, _, sigma = setup
        _, ref = np.linalg.slogdet(sigma)
        tlr = TLRMatrix.from_dense(sigma, 45, acc=1e-9)
        tlr_cholesky(tlr)
        assert logdet_from_tlr_factor(tlr) == pytest.approx(ref, abs=1e-3)

    def test_parallel_matches_serial_exactly(self, setup):
        _, _, sigma = setup
        t_ser = TLRMatrix.from_dense(sigma, 45, acc=1e-8)
        tlr_cholesky(t_ser)
        t_par = TLRMatrix.from_dense(sigma, 45, acc=1e-8)
        with Runtime(num_workers=6) as rt:
            tlr_cholesky(t_par, runtime=rt)
        for k in range(t_ser.nt):
            np.testing.assert_array_equal(t_ser.diag[k], t_par.diag[k])
        for key in t_ser.low:
            np.testing.assert_array_equal(t_ser.low[key].u, t_par.low[key].u)
            np.testing.assert_array_equal(t_ser.low[key].v, t_par.low[key].v)

    def test_non_spd_raises(self):
        bad = -np.eye(60)
        tlr = TLRMatrix.from_dense(bad, 20, acc=1e-8)
        with pytest.raises(NotPositiveDefiniteError):
            tlr_cholesky(tlr)

    def test_single_tile_matrix(self, rng):
        x = rng.random((30, 30))
        spd = x @ x.T + 30 * np.eye(30)
        tlr = TLRMatrix.from_dense(spd, 64, acc=1e-9)
        tlr_cholesky(tlr)
        ref = np.linalg.cholesky(spd)
        np.testing.assert_allclose(tlr.diag[0], ref, atol=1e-8)


class TestTLRSolve:
    def test_solve_vector(self, setup, rng):
        _, _, sigma = setup
        b = rng.random(225)
        tlr = TLRMatrix.from_dense(sigma, 45, acc=1e-10)
        tlr_cholesky(tlr)
        x = tlr_cholesky_solve(tlr, b)
        np.testing.assert_allclose(sigma @ x, b, atol=1e-5)

    def test_solve_multi_rhs(self, setup, rng):
        _, _, sigma = setup
        b = rng.random((225, 4))
        tlr = TLRMatrix.from_dense(sigma, 45, acc=1e-10)
        tlr_cholesky(tlr)
        x = tlr_cholesky_solve(tlr, b)
        np.testing.assert_allclose(sigma @ x, b, atol=1e-5)

    def test_triangular_consistency(self, setup, rng):
        _, _, sigma = setup
        b = rng.random(225)
        tlr = TLRMatrix.from_dense(sigma, 45, acc=1e-11)
        tlr_cholesky(tlr)
        y = tlr_solve_triangular(tlr, b, trans=False)
        x = tlr_solve_triangular(tlr, y, trans=True)
        np.testing.assert_allclose(sigma @ x, b, atol=1e-5)

    def test_rhs_not_mutated(self, setup, rng):
        _, _, sigma = setup
        b = rng.random(225)
        b0 = b.copy()
        tlr = TLRMatrix.from_dense(sigma, 45, acc=1e-9)
        tlr_cholesky(tlr)
        tlr_cholesky_solve(tlr, b)
        np.testing.assert_array_equal(b, b0)

    def test_wrong_length_raises(self, setup, rng):
        _, _, sigma = setup
        tlr = TLRMatrix.from_dense(sigma, 45, acc=1e-9)
        with pytest.raises(ShapeError):
            tlr_solve_triangular(tlr, rng.random(7))


class TestTLRMatvec:
    def test_matches_dense(self, setup, rng):
        _, _, sigma = setup
        tlr = TLRMatrix.from_dense(sigma, 45, acc=1e-10)
        x = rng.random(225)
        np.testing.assert_allclose(tlr_symmetric_matvec(tlr, x), sigma @ x, atol=1e-6)

    def test_multivector(self, setup, rng):
        _, _, sigma = setup
        tlr = TLRMatrix.from_dense(sigma, 45, acc=1e-10)
        x = rng.random((225, 3))
        np.testing.assert_allclose(tlr_symmetric_matvec(tlr, x), sigma @ x, atol=1e-6)

    def test_shape_guard(self, setup, rng):
        _, _, sigma = setup
        tlr = TLRMatrix.from_dense(sigma, 45, acc=1e-9)
        with pytest.raises(ShapeError):
            tlr_symmetric_matvec(tlr, rng.random(10))


def _tlr_factor_to_dense(tlr: TLRMatrix) -> np.ndarray:
    """Assemble the lower factor (avoids to_dense's symmetric mirror)."""
    g = tlr.grid
    out = np.zeros((g.n, g.n))
    for i in range(g.nt):
        out[g.tile_slice(i), g.tile_slice(i)] = tlr.diag[i]
    for (i, j), lr in tlr.low.items():
        out[g.tile_slice(i), g.tile_slice(j)] = lr.to_dense()
    return out
