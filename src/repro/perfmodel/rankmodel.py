"""Parametric model of TLR tile ranks (drives paper-scale estimates).

After Morton ordering, tile-index separation ``d = |i - j|`` tracks
spatial separation, and Matérn covariance tiles decay in rank with
``d``. We model the rank of tile ``(i, j)`` as

    k(d) = kmin + (a0 + a1 * log10(1/acc)) * sqrt(nb / nb_ref) / (1 + d)^p

— rank grows ~linearly in the number of accurate digits requested
(log-spaced accuracy sweeps in the paper), grows ~sqrt with tile size
(a tile twice as large covers twice the points of the same geometry),
and decays polynomially with separation (smooth kernels compress
distant interactions hard).

Defaults were calibrated against measured ranks of Matérn covariance
matrices built by this library (see
:func:`calibrate_rank_model` and ``benchmarks/bench_fig1_compression``);
stronger correlation (larger range θ2) raises the effective ``a1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["RankModel", "calibrate_rank_model", "DEFAULT_RANK_MODEL"]


@dataclass(frozen=True)
class RankModel:
    """Rank of an off-diagonal TLR tile as a function of separation.

    Attributes
    ----------
    a0, a1:
        Base rank and per-decade-of-accuracy growth at separation 0.
    p:
        Polynomial decay exponent in tile separation.
    kmin:
        Rank floor (compression never goes below this).
    nb_ref:
        Tile size the coefficients were calibrated at.
    """

    a0: float = 58.0
    a1: float = 8.3
    p: float = 0.5
    kmin: float = 2.0
    nb_ref: int = 250

    def rank(self, d: int, acc: float, nb: int) -> int:
        """Predicted rank of a tile with index separation ``d >= 1``."""
        if d < 1:
            raise ConfigurationError("off-diagonal tiles have separation >= 1")
        decades = np.log10(1.0 / acc)
        amp = (self.a0 + self.a1 * decades) * np.sqrt(nb / self.nb_ref)
        k = self.kmin + amp / (1.0 + d) ** self.p
        return int(np.clip(round(k), 1, nb))

    def rank_array(self, nt: int, acc: float, nb: int) -> np.ndarray:
        """Ranks for separations ``1..nt-1`` (vectorized helper)."""
        return np.array([self.rank(d, acc, nb) for d in range(1, nt)], dtype=np.int64)

    def mean_rank(self, nt: int, acc: float, nb: int) -> float:
        """Average rank over all strictly-lower tiles of an ``nt x nt`` grid.

        Separation ``d`` occurs ``nt - d`` times in the lower triangle.
        """
        if nt < 2:
            return 0.0
        ranks = self.rank_array(nt, acc, nb)
        weights = np.arange(nt - 1, 0, -1, dtype=np.float64)
        return float(np.sum(ranks * weights) / np.sum(weights))


#: Calibration for Matérn-class covariances at medium correlation.
DEFAULT_RANK_MODEL = RankModel()


def calibrate_rank_model(
    rank_matrix: np.ndarray,
    acc: float,
    nb: int,
    *,
    kmin: float = 2.0,
    p_grid: Optional[np.ndarray] = None,
) -> RankModel:
    """Fit a :class:`RankModel` to a measured tile-rank matrix.

    Parameters
    ----------
    rank_matrix:
        Output of :meth:`repro.linalg.TLRMatrix.rank_matrix` (diagonal
        entries are -1 and ignored).
    acc:
        Accuracy the matrix was compressed to.
    nb:
        Tile size of the measured matrix (becomes ``nb_ref``).
    kmin:
        Rank floor to assume.
    p_grid:
        Decay exponents to scan (default 0.3..2.0); for each ``p`` the
        amplitude has a closed-form least-squares solution, so the fit
        is a 1-D scan plus projection.

    Returns
    -------
    A fitted :class:`RankModel` with ``a1`` carrying the amplitude (so
    re-scaling to other accuracies follows the default decade slope
    proportionally).
    """
    rm = np.asarray(rank_matrix)
    nt = rm.shape[0]
    seps, ks = [], []
    for i in range(nt):
        for j in range(i):
            if rm[i, j] >= 0:
                seps.append(i - j)
                ks.append(rm[i, j])
    if not seps:
        raise ConfigurationError("rank matrix has no off-diagonal entries to fit")
    d = np.asarray(seps, dtype=np.float64)
    k = np.asarray(ks, dtype=np.float64)
    y = np.maximum(k - kmin, 0.25)
    if p_grid is None:
        p_grid = np.linspace(0.3, 2.0, 35)
    decades = np.log10(1.0 / acc)
    best = None
    for p in p_grid:
        basis = 1.0 / (1.0 + d) ** p
        amp = float(np.dot(y, basis) / np.dot(basis, basis))
        resid = float(np.sum((y - amp * basis) ** 2))
        if best is None or resid < best[0]:
            best = (resid, p, amp)
    assert best is not None
    _, p, amp = best
    # Split the amplitude into the a0 + a1*decades form, keeping the
    # default a0:a1 proportion at this accuracy.
    a1 = amp / (decades + DEFAULT_RANK_MODEL.a0 / max(DEFAULT_RANK_MODEL.a1, 1e-9))
    a0 = amp - a1 * decades
    return RankModel(a0=float(a0), a1=float(a1), p=float(p), kmin=kmin, nb_ref=nb)
