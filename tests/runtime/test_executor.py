"""Tests for the runtime engines: correctness, determinism, failures."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import RuntimeEngineError
from repro.runtime import AccessMode, Runtime

R, RW = AccessMode.READ, AccessMode.READWRITE


class TestSerialEngine:
    def test_executes_at_insertion(self):
        with Runtime(engine="serial") as rt:
            h = rt.register(np.zeros(3))
            order = []

            def record(x, tag):
                order.append(tag)
                x += 1

            rt.insert_task(record, [(h, RW)], args=("a",))
            assert order == ["a"]  # already ran
            rt.insert_task(record, [(h, RW)], args=("b",))
            rt.wait_all()
            assert order == ["a", "b"]
        np.testing.assert_allclose(h.get(), 2.0)

    def test_serial_error_raised_at_wait(self):
        with Runtime(engine="serial") as rt:
            h = rt.register(np.zeros(1))

            def boom(x):
                raise ValueError("bad codelet")

            rt.insert_task(boom, [(h, RW)])
            with pytest.raises(ValueError, match="bad codelet"):
                rt.wait_all()


class TestThreadsEngine:
    def test_dependency_chain_result(self):
        with Runtime(num_workers=4) as rt:
            h = rt.register(np.zeros(8))

            def add(x, v):
                x += v

            def scale(x, f):
                x *= f

            rt.insert_task(add, [(h, RW)], args=(1.0,))
            rt.insert_task(scale, [(h, RW)], args=(3.0,))
            rt.insert_task(add, [(h, RW)], args=(0.5,))
            rt.wait_all()
        np.testing.assert_allclose(h.get(), 3.5)

    def test_parallel_readers_single_writer(self):
        with Runtime(num_workers=8) as rt:
            src = rt.register(np.arange(100.0))
            sinks = [rt.register(np.zeros(100)) for _ in range(8)]

            def copy(s, d):
                time.sleep(0.001)
                d[:] = s

            for sink in sinks:
                rt.insert_task(copy, [(src, R), (sink, RW)])
            rt.wait_all()
        for sink in sinks:
            np.testing.assert_array_equal(sink.get(), np.arange(100.0))

    def test_error_propagates_and_others_finish(self):
        with Runtime(num_workers=4) as rt:
            good = rt.register(np.zeros(4))
            bad = rt.register(np.zeros(4))

            def ok(x):
                x += 1

            def boom(x):
                raise RuntimeError("kernel failure")

            rt.insert_task(boom, [(bad, RW)])
            rt.insert_task(ok, [(good, RW)])
            with pytest.raises(RuntimeError, match="kernel failure"):
                rt.wait_all()
            # Error is consumed; subsequent waits are clean.
            rt.wait_all()
        np.testing.assert_allclose(good.get(), 1.0)

    def test_wait_all_idempotent(self):
        with Runtime(num_workers=2) as rt:
            h = rt.register(np.zeros(1))
            rt.insert_task(lambda x: None, [(h, R)])
            rt.wait_all()
            rt.wait_all()

    def test_insert_after_shutdown_raises(self):
        rt = Runtime(num_workers=2)
        rt.shutdown()
        with pytest.raises(RuntimeEngineError):
            rt.register(np.zeros(1))
        with pytest.raises(RuntimeEngineError):
            rt.insert_task(lambda: None, [])

    def test_concurrency_actually_happens(self):
        # Two independent sleeping tasks on 2 workers should overlap.
        with Runtime(num_workers=2) as rt:
            a = rt.register(np.zeros(1))
            b = rt.register(np.zeros(1))

            def sleeper(x):
                time.sleep(0.15)

            t0 = time.perf_counter()
            rt.insert_task(sleeper, [(a, RW)])
            rt.insert_task(sleeper, [(b, RW)])
            rt.wait_all()
            elapsed = time.perf_counter() - t0
        assert elapsed < 0.28  # serial would be >= 0.30

    def test_trace_records_all_tasks(self):
        with Runtime(num_workers=3, trace=True) as rt:
            h = rt.register(np.zeros(2))
            for _ in range(7):
                rt.insert_task(lambda x: None, [(h, R)], name="probe")
            rt.wait_all()
            trace = rt.trace
            assert trace is not None
            assert len(trace.events) == 7
            assert trace.makespan() >= 0.0
            assert 0.0 <= trace.utilization(3) <= 1.0
            counts = trace.by_codelet()
            assert counts["probe"][0] == 7

    @pytest.mark.parametrize("policy", ["fifo", "lifo", "priority"])
    def test_policies_produce_same_final_state(self, policy):
        with Runtime(num_workers=4, scheduler=policy) as rt:
            h = rt.register(np.zeros(4))

            def add(x, v):
                x += v

            for v in (1.0, 2.0, 4.0):
                rt.insert_task(add, [(h, RW)], args=(v,))
            rt.wait_all()
        np.testing.assert_allclose(h.get(), 7.0)


class TestDeterminismOracle:
    """Random task programs must produce identical state under any engine.

    This is the sequential-task-flow contract: RW chains serialize in
    program order, so the threads engine must match the serial oracle.
    """

    @settings(max_examples=10, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3), st.sampled_from(["add", "mul"])),
            min_size=1,
            max_size=25,
        ),
        st.integers(1, 8),
    )
    def test_threads_match_serial(self, program, workers):
        def run(engine, num_workers=None):
            with Runtime(engine=engine, num_workers=num_workers) as rt:
                handles = [rt.register(np.ones(4) * (i + 1)) for i in range(4)]

                def add(dst, src):
                    dst += src.sum()

                def mul(dst, src):
                    dst *= 1.0 + 0.01 * src.sum()

                for dst, src, op in program:
                    fn = add if op == "add" else mul
                    rt.insert_task(fn, [(handles[dst], RW), (handles[src], R)])
                rt.wait_all()
                return [h.get().copy() for h in handles]

        serial = run("serial")
        threaded = run("threads", workers)
        for s, t in zip(serial, threaded):
            np.testing.assert_array_equal(s, t)


class TestSchedulerQueues:
    def test_priority_order_single_worker(self):
        # One worker + a blocking first task: remaining tasks execute in
        # priority order regardless of insertion order.
        order: list[int] = []
        release = threading.Event()
        with Runtime(num_workers=1, scheduler="priority") as rt:
            gate = rt.register(np.zeros(1))

            def block(x):
                release.wait(timeout=5)

            rt.insert_task(block, [(gate, RW)])
            handles = [rt.register(np.zeros(1)) for _ in range(3)]
            for i, prio in enumerate((1, 5, 3)):
                rt.insert_task(
                    lambda x, i=i: order.append(i), [(handles[i], RW)], priority=prio
                )
            release.set()
            rt.wait_all()
        assert order == [1, 2, 0]


class TestShutdownLifecycle:
    """Shutdown must be idempotent and thread-safe so the serving registry
    can recycle runtimes without leaking worker threads."""

    def test_shutdown_idempotent(self):
        rt = Runtime(num_workers=2)
        workers = list(rt._threads)
        assert not rt.closed
        rt.shutdown()
        assert rt.closed
        rt.shutdown()  # second call is a no-op
        rt.shutdown(wait=False)
        assert rt.closed
        assert not any(th.is_alive() for th in workers)

    def test_context_manager_then_explicit_shutdown(self):
        with Runtime(num_workers=2) as rt:
            h = rt.register(np.zeros(3))
            rt.insert_task(lambda x: None, [(h, RW)])
            rt.wait_all()
        assert rt.closed
        rt.shutdown()  # recycle path: explicit close after the with-block
        with pytest.raises(RuntimeEngineError):
            rt.insert_task(lambda x: None, [(h, RW)])

    def test_concurrent_shutdown_joins_all_workers(self):
        rt = Runtime(num_workers=4)
        workers = list(rt._threads)
        errors: list[BaseException] = []

        def close():
            try:
                rt.shutdown()
            except BaseException as exc:  # pragma: no cover - should not happen
                errors.append(exc)

        threads = [threading.Thread(target=close) for _ in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join(timeout=10.0)
        assert not errors
        assert rt.closed
        assert not any(th.is_alive() for th in workers)

    def test_shutdown_drains_pending_work_once(self):
        rt = Runtime(num_workers=2)
        h = rt.register(np.zeros(1))

        def slow(x):
            time.sleep(0.02)
            x += 1.0

        for _ in range(6):
            rt.insert_task(slow, [(h, RW)])
        rt.shutdown()  # waits for the in-flight tasks
        assert h.get()[0] == 6.0
        rt.shutdown()  # and stays closed
        assert rt.closed

    def test_no_worker_thread_leak_across_recycles(self):
        def worker_count() -> int:
            return sum(
                1 for th in threading.enumerate() if th.name.startswith("repro-worker")
            )

        before = worker_count()
        for _ in range(5):
            with Runtime(num_workers=3) as rt:
                h = rt.register(np.zeros(2))
                rt.insert_task(lambda x: None, [(h, RW)])
                rt.wait_all()
        assert worker_count() == before

    def test_serial_engine_shutdown_idempotent(self):
        rt = Runtime(engine="serial")
        h = rt.register(np.zeros(1))
        rt.insert_task(lambda x: None, [(h, RW)])
        rt.shutdown()
        rt.shutdown()
        assert rt.closed
