"""Ablation bench — runtime scheduler policy and parallel scaling.

Compares ready-queue policies on the dense tile Cholesky DAG and
benchmarks the parallel factorization against the serial loop.
"""

from __future__ import annotations

import pytest

from repro.data import generate_irregular_grid, sort_locations
from repro.experiments.ablation import scheduler_study
from repro.experiments.common import bench_scale
from repro.kernels import MaternCovariance
from repro.linalg import TileMatrix, tile_cholesky
from repro.runtime import Runtime


def test_ablation_scheduler_table(benchmark, outdir):
    """Writes the scheduler-policy comparison table."""
    table = benchmark.pedantic(scheduler_study, rounds=1, iterations=1)
    table.save("ablation_scheduler")
    assert len(table.rows) == 3


@pytest.mark.parametrize("workers", [1, 4])
def test_parallel_tile_cholesky_scaling(benchmark, workers):
    """Task-parallel dense tile Cholesky at different worker counts."""
    n = 1024 if bench_scale() == "quick" else 2048
    locs = generate_irregular_grid(n, seed=0)
    locs, _, _ = sort_locations(locs)
    sigma = MaternCovariance(1.0, 0.1, 0.5).matrix(locs)

    def run():
        tiles = TileMatrix.from_dense(sigma, 128, symmetric_lower=True)
        with Runtime(num_workers=workers) as rt:
            tile_cholesky(tiles, runtime=rt)
        return tiles

    tiles = benchmark.pedantic(run, rounds=2, iterations=1)
    assert tiles.nt >= 2
