"""Chaos soak: the serving + fitting stack under seeded fault plans.

The harness arms one deterministic :class:`FaultPlan` (kills, delays,
injected errors — counted across processes through the plan's
``state_dir``), then drives concurrent HTTP traffic and a fit job
through it. The invariants are the resilience layer's contract:

* **zero wrong answers** — every successful prediction bit-matches the
  reference engine generation; degradation may slow or reject requests
  but never silently corrupts them;
* **bounded errors** — only injected fault types surface, and only a
  handful (retries/respawns absorb the rest);
* **counters reconcile** — every issued request is accounted for, and
  the plan's journal shows the faults actually fired;
* **nothing leaks** — after shutdown no worker or fit process survives.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.data import generate_irregular_grid, sample_gaussian_field
from repro.exceptions import InjectedFaultError, ServerError
from repro.kernels import MaternCovariance
from repro.mle import PredictionEngine
from repro.resilience import FaultPlan, FaultRule, RetryPolicy, arm, disarm
from repro.serving import ModelBundle, ServingClient, ServingServer

N, NB = 100, 36


@pytest.fixture(autouse=True)
def _disarmed():
    disarm()
    yield
    disarm()


def _bundle(theta=(1.0, 0.1, 0.5)):
    locs = generate_irregular_grid(N, seed=0)
    model = MaternCovariance(*theta)
    z = sample_gaussian_field(locs, model, seed=1)
    bundle = ModelBundle(
        model=model, locations=locs, z=z, variant="full-block", tile_size=NB
    )
    bundle.factor = bundle.build_engine().factor()
    return bundle


@pytest.fixture()
def targets():
    return np.ascontiguousarray(np.random.default_rng(5).random((6, 2)))


def _await_no_children(timeout=15.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if not multiprocessing.active_children():
            return []
        time.sleep(0.05)
    return multiprocessing.active_children()


# ---------------------------------------------------------------------------
# Graceful degradation over HTTP: last-known-good serving
# ---------------------------------------------------------------------------


def test_http_serves_last_known_good_generation_when_bundle_corrupts(
    tmp_path, targets
):
    """Warm a model, evict it from the LRU, corrupt its bundle on disk:
    the next predict rehydrates, hits the corruption, falls back to the
    last-known-good engine, and answers bit-identically — flagged
    ``degraded`` so the caller knows."""
    path_a = _bundle((1.0, 0.1, 0.5)).save(tmp_path / "a.bundle")
    path_b = _bundle((2.0, 0.15, 0.8)).save(tmp_path / "b.bundle")
    ref_a = PredictionEngine.from_bundle(path_a).predict(targets)
    with ServingServer(
        {"a": str(path_a), "b": str(path_b)},
        num_workers=1,
        registry_options={"max_models": 1},
        service_options={"batch_window": 0.0},
        enable_fitting=False,
    ) as server:
        with ServingClient(server.url) as cli:
            value, flags = cli.predict("a", targets, detail=True)
            np.testing.assert_array_equal(value, ref_a)
            assert flags == {"degraded": False}
            cli.predict("b", targets)  # max_models=1: evicts a's warm engine
            data = bytearray((path_a / "arrays.npz").read_bytes())
            data[len(data) // 2] ^= 0xFF
            (path_a / "arrays.npz").write_bytes(bytes(data))

            value, flags = cli.predict("a", targets, detail=True)
            assert flags == {"degraded": True}
            np.testing.assert_array_equal(value, ref_a)  # gen-A values, exactly
            # The corrupt copy was quarantined, and the fallback sticks.
            assert path_a.with_name("a.bundle.corrupt").exists()
            value, flags = cli.predict("a", targets, detail=True)
            assert flags == {"degraded": True}
            np.testing.assert_array_equal(value, ref_a)
            # Healthy models are unaffected.
            _, flags = cli.predict("b", targets, detail=True)
            assert flags == {"degraded": False}
    assert _await_no_children() == []


def test_models_and_metrics_degrade_to_partial_results(tmp_path, targets):
    """A dead worker must not take ``/v1/models`` or ``/v1/metrics``
    down with it: both answer with the surviving workers' data, flag
    themselves ``degraded``, and name the dead worker."""
    path = _bundle().save(tmp_path / "m.bundle")
    with ServingServer(
        {"m": str(path)},
        num_workers=2,
        service_options={"batch_window": 0.0},
        enable_fitting=False,
    ) as server:
        with ServingClient(server.url) as cli:
            cli.predict("m", targets)
            victim = server.worker_for("m")
            handle = server._workers[victim]
            os.kill(handle.process.pid, signal.SIGKILL)
            handle.process.join(10.0)
            deadline = time.time() + 10.0
            while handle.alive and time.time() < deadline:
                time.sleep(0.01)
            assert not handle.alive

            models = cli._request("GET", "/v1/models")
            assert models["degraded"] is True
            assert victim in models["dead_workers"]
            survivor = 1 - victim
            assert str(survivor) in {str(k) for k in models["models"]}

            metrics = cli.metrics()
            assert metrics["degraded"] is True
            assert victim in metrics["dead_workers"]
            assert metrics["admission"]["n_admitted"] >= 1
    assert _await_no_children() == []


# ---------------------------------------------------------------------------
# The soak
# ---------------------------------------------------------------------------


def test_chaos_soak_under_kills_delays_and_injected_errors(tmp_path, targets):
    locs = generate_irregular_grid(64, seed=20)
    fit_z = sample_gaussian_field(locs, MaternCovariance(1.0, 0.1, 0.5), seed=21)
    path = _bundle().save(tmp_path / "m.bundle")
    reference = PredictionEngine.from_bundle(path).predict(targets)

    plan = arm(
        FaultPlan(
            rules=[
                # A worker SIGKILLed mid-request: the router respawns it
                # and retries; clients never notice.
                FaultRule(site="worker.pipe", action="kill", after=60),
                # A few slow requests (not enough to trip anything).
                FaultRule(site="worker.pipe", action="delay", after=20, count=3, delay=0.02),
                # Two engine failures: surfaced (or absorbed by the
                # batch-retry) but never as a wrong answer.
                FaultRule(site="engine.predict", action="raise", after=30, count=2),
                # The fit's first leg dies instantly; the orchestrator
                # respawns it and the job still converges.
                FaultRule(site="fit.leg", action="kill", after=0, count=1),
            ],
            seed=1234,
            state_dir=tmp_path / "chaos",
        ),
        propagate=True,
    )

    answers, errors = [], []
    issued = [0]
    stop = threading.Event()
    lock = threading.Lock()

    def hammer():
        policy = RetryPolicy(max_attempts=3, base_delay=0.01, seed=99)
        with ServingClient(path_or_url, retry_policy=policy) as cli:
            while not stop.is_set():
                with lock:
                    issued[0] += 1
                try:
                    got = cli.predict("m", targets, deadline=30.0)
                    with lock:
                        answers.append(got)
                except Exception as exc:  # noqa: BLE001 - tallied below
                    with lock:
                        errors.append(exc)

    with ServingServer(
        {"m": str(path)},
        num_workers=2,
        max_worker_restarts=4,
        service_options={"batch_window": 0.0},
        jobs_dir=tmp_path / "jobs",
        fit_options={"max_workers": 1, "max_restarts": 2},
    ) as server:
        path_or_url = server.url
        with ServingClient(server.url) as cli:
            job = cli.fit(
                locations=locs,
                z=fit_z,
                variant="full-block",
                tile_size=16,
                n_starts=1,
                maxiter=8,
                seed=3,
            )["job_id"]

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for t in threads:
                t.start()
            try:
                # Soak until the interesting faults have all fired.
                deadline = time.time() + 60.0
                while time.time() < deadline:
                    if (
                        plan.hits("worker.pipe") > 65
                        and plan.hits("engine.predict") > 34
                        and server.n_worker_restarts >= 1
                    ):
                        break
                    time.sleep(0.05)
                record = cli.wait_job(job, timeout=120.0)
            finally:
                stop.set()
                for t in threads:
                    t.join()

            # --- the fit survived its leg kill ----------------------------
            assert record["status"] == "done"
            assert record["restarts"] >= 1

            # --- zero wrong answers ---------------------------------------
            assert answers, "the soak produced no successful predictions"
            for got in answers:
                np.testing.assert_array_equal(got, reference)

            # --- bounded, typed errors ------------------------------------
            assert all(
                isinstance(exc, (InjectedFaultError, ServerError)) for exc in errors
            ), f"unexpected error types: {[type(e).__name__ for e in errors]}"
            assert len(errors) <= 8, f"{len(errors)} errors is not 'bounded'"

            # --- counters reconcile ---------------------------------------
            assert issued[0] == len(answers) + len(errors)
            fired = plan.fired()
            by_action = {}
            for event in fired:
                by_action.setdefault((event["site"], event["action"]), []).append(event)
            assert len(by_action[("worker.pipe", "kill")]) == 1
            assert len(by_action[("fit.leg", "kill")]) == 1
            assert len(by_action[("engine.predict", "raise")]) == 2
            assert len(by_action[("worker.pipe", "delay")]) == 3
            assert server.n_worker_restarts >= 1

            # The journal survives as a replayable artifact.
            journal = (tmp_path / "chaos" / "fired.jsonl").read_text()
            assert all(json.loads(line) for line in journal.strip().splitlines())

    # --- nothing leaks ----------------------------------------------------
    assert _await_no_children() == []
