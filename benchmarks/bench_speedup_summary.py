"""Speedup-summary bench — the paper's §VIII-B/C headline numbers.

Derives maximum modeled TLR speedups from the Figure 3/4 series and
checks them against the paper's claimed 7X/10X/13X/5X (shared memory)
and up-to-5X (distributed).
"""

from __future__ import annotations

from repro.experiments.common import save_tables
from repro.experiments.speedup import (
    PAPER_CLAIMED_SPEEDUPS,
    distributed_speedups,
    shared_memory_speedups,
)


def test_speedup_summaries(benchmark, outdir):
    """Writes the speedup tables; asserts the claimed windows."""

    def run():
        return shared_memory_speedups(), distributed_speedups(n_nodes=256)

    shared, dist = benchmark.pedantic(run, rounds=1, iterations=1)
    save_tables([shared, dist], "speedup_summary")

    by_machine = {row[0]: row[1] for row in shared.rows}
    for name, claim in PAPER_CLAIMED_SPEEDUPS.items():
        assert claim * 0.6 <= by_machine[name] <= claim * 1.4, (name, by_machine[name])

    # Distributed: the paper reports up to ~5X.
    best = max(row[1] for row in dist.rows)
    assert 3.0 <= best <= 8.0
