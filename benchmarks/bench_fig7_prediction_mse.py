"""Figure 7 bench — Monte-Carlo prediction-MSE boxplots.

Reuses the Figure 6 session cache when available (both figures share one
Monte-Carlo run in the paper too); otherwise runs a reduced study.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig6
from repro.experiments.common import save_tables

from bench_fig6_estimation import RESULTS_CACHE


def test_fig7_prediction_mse(benchmark, outdir):
    """Writes the Figure 7 tables; checks the correlation-vs-MSE trend."""

    def obtain():
        if RESULTS_CACHE:
            return RESULTS_CACHE
        return fig6.run_fig6_fig7()

    results = benchmark.pedantic(obtain, rounds=1, iterations=1)
    tables = [t7 for (_t6, t7, _raw) in results.values()]
    save_tables(tables, "fig7_prediction_mse_boxplots")

    # Paper's observation: prediction MSE decreases as the true spatial
    # correlation strengthens (weak 0.124 > medium 0.036 > strong 0.012).
    labels = sorted(results)  # "(1, 0.03, 0.5)" < "(1, 0.1, 0.5)" < "(1, 0.3, 0.5)"
    mean_mse = []
    for label in labels:
        raw = results[label][2]
        all_mse = np.concatenate(list(raw.mse.values()))
        mean_mse.append(float(all_mse.mean()))
    assert mean_mse[0] > mean_mse[-1], mean_mse
