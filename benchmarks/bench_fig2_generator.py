"""Figure 2 bench — synthetic irregular-grid generation.

Times the paper's location generator at a larger size and writes the
Figure 2 property table (400 points, 362 fit + 38 predict).
"""

from __future__ import annotations

from repro.data import generate_irregular_grid
from repro.experiments.fig2 import run_fig2


def test_fig2_generator(benchmark, outdir):
    """Generation throughput plus the Figure 2 property table."""
    pts = benchmark(generate_irregular_grid, 40_000, 0)
    assert pts.shape == (40_000, 2)
    table = run_fig2()
    table.save("fig2_irregular_grid")
