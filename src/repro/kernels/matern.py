"""The Matérn correlation family (paper §IV, eq. (5)).

The Matérn class is

.. math::

    C(r; \\theta) = \\frac{\\theta_1}{2^{\\theta_3 - 1}\\,\\Gamma(\\theta_3)}
        \\Big(\\frac{r}{\\theta_2}\\Big)^{\\theta_3}
        K_{\\theta_3}\\Big(\\frac{r}{\\theta_2}\\Big),

with variance :math:`\\theta_1 > 0`, spatial range :math:`\\theta_2 > 0`,
and smoothness :math:`\\theta_3 > 0`; :math:`K_\\nu` is the modified
Bessel function of the second kind. This module implements the
*correlation* (unit-variance) form; the variance multiplier lives in
:mod:`repro.kernels.covariance`.

Special cases handled with closed forms (both for speed and numerical
robustness, since ``kv`` over/underflows at the extremes):

* :math:`\\theta_3 = 1/2`: exponential model ``exp(-r/θ2)`` (rough field);
* :math:`\\theta_3 = 3/2, 5/2`: the standard polynomial-times-exponential
  forms used across machine learning;
* :math:`\\theta_3 = 1`: Whittle model ``(r/θ2) K_1(r/θ2)``;
* :math:`\\theta_3 = \\infty`: Gaussian model ``exp(-r²/(2 θ2²))``.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

from ..utils.validation import check_positive

__all__ = [
    "matern_correlation",
    "exponential_correlation",
    "whittle_correlation",
    "gaussian_correlation",
    "SPECIAL_SMOOTHNESS",
]

#: Smoothness values with dedicated closed-form fast paths.
SPECIAL_SMOOTHNESS = (0.5, 1.0, 1.5, 2.5)

#: Scaled distances below this are treated as zero (correlation 1). The
#: Bessel branch is numerically ill-behaved as r -> 0+ where the limit is 1.
_TINY = 1e-300


def exponential_correlation(r: np.ndarray, range_: float) -> np.ndarray:
    """Exponential correlation ``exp(-r/range_)`` (Matérn ν = 1/2)."""
    check_positive(range_, "range_")
    return np.exp(-np.asarray(r, dtype=np.float64) / range_)


def whittle_correlation(r: np.ndarray, range_: float) -> np.ndarray:
    """Whittle correlation ``(r/θ2) K_1(r/θ2)`` (Matérn ν = 1).

    The removable singularity at ``r = 0`` is patched to 1 (its limit).
    """
    check_positive(range_, "range_")
    x = np.asarray(r, dtype=np.float64) / range_
    out = np.ones_like(x)
    pos = x > _TINY
    xp = x[pos]
    out[pos] = xp * special.kv(1.0, xp)
    # kv underflows to 0 for large arguments, which is the correct limit.
    return np.nan_to_num(out, nan=0.0, posinf=1.0, neginf=0.0, copy=False)


def gaussian_correlation(r: np.ndarray, range_: float) -> np.ndarray:
    """Gaussian (squared-exponential) correlation, the ν → ∞ Matérn limit.

    Uses the convention ``exp(-r^2 / (2 θ2^2))`` so ``θ2`` remains a length
    scale comparable to the finite-ν parameterization.
    """
    check_positive(range_, "range_")
    x = np.asarray(r, dtype=np.float64) / range_
    return np.exp(-0.5 * x * x)


def _matern_15(x: np.ndarray) -> np.ndarray:
    """Matérn ν=3/2 in the ``(r/θ2)`` scaling used by eq. (5)."""
    return (1.0 + x) * np.exp(-x)


def _matern_25(x: np.ndarray) -> np.ndarray:
    """Matérn ν=5/2 in the ``(r/θ2)`` scaling used by eq. (5)."""
    return (1.0 + x + x * x / 3.0) * np.exp(-x)


def matern_correlation(r: np.ndarray, range_: float, smoothness: float) -> np.ndarray:
    """Matérn correlation ``C(r)/θ1`` for arbitrary positive smoothness.

    Parameters
    ----------
    r:
        Distances (any shape, non-negative).
    range_:
        Spatial range :math:`\\theta_2 > 0`. The paper's reference values:
        0.03 weak, 0.1 medium, 0.3 strong correlation on the unit square.
    smoothness:
        Smoothness :math:`\\theta_3 > 0`; 0.5 = rough, 1 = smooth
        (paper §IV). Values above ~50 are computed with the Gaussian
        limit, which is accurate to well below TLR accuracy thresholds.

    Returns
    -------
    Correlation array of the same shape as ``r``; ``C(0) = 1``.

    Notes
    -----
    The scaling here follows the paper's eq. (5) *literally*: the Bessel
    argument is ``r/θ2`` (not the ``sqrt(2ν) r/θ2`` variant common in ML
    libraries). This matches ExaGeoStat's implementation and makes the
    Table I/II parameter values directly interpretable.
    """
    check_positive(range_, "range_")
    check_positive(smoothness, "smoothness")
    r_arr = np.asarray(r, dtype=np.float64)
    x = r_arr / range_

    if smoothness == 0.5:
        return np.exp(-x)
    if smoothness == 1.5:
        return _matern_15(x)
    if smoothness == 2.5:
        return _matern_25(x)
    if smoothness == 1.0:
        return whittle_correlation(r_arr, range_)
    if smoothness > 50.0:
        # kv(nu, x) overflows for large nu; the family converges to the
        # Gaussian model (paper §IV), use it directly.
        return gaussian_correlation(r_arr, range_)

    nu = float(smoothness)
    scalar_input = x.ndim == 0
    x = np.atleast_1d(x)
    out = np.ones_like(x)
    pos = x > _TINY
    xp = x[pos]
    # 2^{1-nu}/Gamma(nu) * x^nu * K_nu(x), computed in log space for the
    # prefactor to delay overflow for moderate nu.
    log_pref = (1.0 - nu) * math.log(2.0) - special.gammaln(nu)
    with np.errstate(over="ignore", invalid="ignore", under="ignore"):
        vals = np.exp(log_pref + nu * np.log(xp)) * special.kv(nu, xp)
    out[pos] = vals
    # Large-argument kv underflow produces 0 (correct); x**nu overflow with
    # kv underflow can produce nan — the true value there is ~0.
    out = np.nan_to_num(out, nan=0.0, posinf=1.0, neginf=0.0, copy=False)
    np.clip(out, 0.0, 1.0, out=out)
    return out.reshape(()) if scalar_input else out
