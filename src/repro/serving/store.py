"""Persisted fits: the ``meta.json`` + ``arrays.npz`` model bundle.

ExaGeoStat's workflow — and ExaGeoStatR's packaging of it — is *fit
once, predict many times*. Serving that workflow at scale (ROADMAP
north star) requires the "fit once" half to survive the process that
ran it: a fitted model must be shippable to serving workers that never
saw the training data pipeline. :class:`ModelBundle` is that unit of
shipment. It captures

* the fitted covariance model (family, ``theta``, metric, nugget),
* the (Morton-ordered) training locations and observations,
* the substrate configuration (variant, ``nb``, ``acc``, compressor,
  truncation rule),
* optionally the ``Sigma_22`` Cholesky factor in its native substrate
  format (dense / tile / TLR), so a loaded engine adopts the *exact*
  factor the fit produced — predictions from a fresh process are then
  bit-identical to the fitting process, and the first request skips
  generation and factorization entirely,
* optionally the fit's cached distance blocks, rehydrated into the
  loaded engine's :class:`~repro.linalg.generation.TileDistanceCache`
  so even a re-factorization at a new ``theta`` pays no distance work.

On disk a bundle is a directory holding ``meta.json`` (everything
scalar, versioned) and ``arrays.npz`` (every array, with structured
keys for factor tiles and distance blocks). Both files are plain
formats readable without this library.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..config import get_config
from ..exceptions import BundleCorruptError, BundleError
from ..resilience.faults import fault_point
from ..kernels import covariance as _covariance
from ..kernels.covariance import CovarianceModel
from ..linalg.compression import LowRank
from ..linalg.generation import TileDistanceCache
from ..linalg.tile_matrix import TileGrid, TileMatrix
from ..linalg.tlr_matrix import TLRMatrix
from ..mle.prediction_engine import Factor, PredictionEngine
from ..runtime import Runtime

__all__ = [
    "ModelBundle",
    "save_model",
    "load_model",
    "bundle_from_fit",
    "model_to_spec",
    "model_from_spec",
]

#: On-disk format version; bumped on breaking layout changes.
FORMAT_VERSION = 1

META_NAME = "meta.json"
ARRAYS_NAME = "arrays.npz"

#: Covariance families a bundle may reference, by class name.
KERNEL_FAMILIES: Dict[str, type] = {
    name: getattr(_covariance, name) for name in _covariance.__all__
}


def _sha256_file(path: Path, chunk: int = 1 << 20) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as fh:
        while True:
            block = fh.read(chunk)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


def _fsync_path(path: Path) -> None:
    """fsync a file or directory, tolerating filesystems that refuse."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _quarantine(path: Path) -> Path:
    """Rename a corrupt bundle directory to ``<name>.corrupt`` (counter
    suffixed if a previous quarantine already claimed the name) so
    retries and registry rehydrations stop re-reading the bad copy."""
    target = path.with_name(path.name + ".corrupt")
    counter = 1
    while target.exists():
        target = path.with_name(f"{path.name}.corrupt{counter}")
        counter += 1
    try:
        os.replace(path, target)
    except OSError:
        return path  # e.g. concurrent quarantine; the error still raises
    return target


def model_to_spec(model: CovarianceModel) -> dict:
    """The JSON-able description of a covariance model (family + theta +
    metric + nugget) used by bundle ``meta.json`` and fit-job specs."""
    return {
        "family": type(model).__name__,
        "param_names": list(model.param_names),
        "theta": [float(t) for t in model.theta],
        "metric": model.metric,
        "nugget": float(model.nugget),
    }


def model_from_spec(spec: dict) -> CovarianceModel:
    """Rebuild a covariance model from :func:`model_to_spec` output."""
    if not isinstance(spec, dict):
        raise BundleError(f"model spec must be an object, got {type(spec).__name__}")
    family = spec.get("family")
    cls = KERNEL_FAMILIES.get(family)
    if cls is None:
        raise BundleError(
            f"unknown covariance family {family!r}; known: {sorted(KERNEL_FAMILIES)}"
        )
    try:
        model = cls(metric=spec["metric"], nugget=spec["nugget"])
        theta = spec["theta"]
    except KeyError as exc:
        raise BundleError(f"model spec is missing required key {exc}") from exc
    if list(model.param_names) != list(spec.get("param_names", model.param_names)):
        raise BundleError(
            f"bundle parameter names {spec.get('param_names')} do not match "
            f"{family}'s {list(model.param_names)}"
        )
    return model.with_theta(theta)


@dataclass
class ModelBundle:
    """A fitted model plus everything needed to serve it.

    Attributes
    ----------
    model:
        Fitted covariance model (at the fit's ``theta``).
    locations:
        ``(n, d)`` training locations in the order the fit used them
        (Morton-ordered when the estimator reordered).
    z:
        ``(n,)`` or ``(n, k)`` observations in the same order, or
        ``None`` for a variance-only model.
    variant, acc, tile_size, compression_method, truncation:
        Substrate configuration of the fit (and of the serving engine).
    factor:
        Optional ``Sigma_22`` Cholesky factor in the substrate's native
        format; adopted verbatim by :meth:`build_engine`.
    distance_blocks:
        Optional exported :class:`TileDistanceCache` blocks
        (tile/TLR substrates), keyed ``(r0, r1, c0, c1)``.
    full_distances:
        Optional ``(n, n)`` distance matrix (full-block substrate).
    perm:
        Optional ``(n,)`` permutation mapping the fit's *original*
        input row order to the stored (Morton-ordered) rows:
        ``locations == original_locations[perm]``. Lets a refit align
        new observations supplied in the original order (the
        :class:`~repro.fitting.FitJobSpec` inline-``z`` contract) with
        the stored locations.
    info:
        Free-form scalar metadata (loglik, n_evals, ...) persisted into
        ``meta.json``.
    """

    model: CovarianceModel
    locations: np.ndarray
    z: Optional[np.ndarray]
    variant: str = "full-block"
    acc: Optional[float] = None
    tile_size: Optional[int] = None
    compression_method: Optional[str] = None
    truncation: Optional[str] = None
    factor: Optional[Factor] = None
    distance_blocks: Optional[Dict[Tuple[int, int, int, int], np.ndarray]] = None
    full_distances: Optional[np.ndarray] = None
    perm: Optional[np.ndarray] = None
    info: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        cfg = get_config()
        self.locations = np.ascontiguousarray(self.locations, dtype=np.float64)
        if self.z is not None:
            self.z = np.ascontiguousarray(self.z, dtype=np.float64)
        self.acc = cfg.tlr_accuracy if self.acc is None else float(self.acc)
        if self.tile_size is None:
            planned = None
            if cfg.auto_tune and self.variant in ("full-tile", "tlr"):
                # Opt-in self-tuning (Config.auto_tune): registration-time
                # tile size from the calibrated planner; None (planning
                # failed) falls back to the static default.
                from ..perfmodel.planner import planned_tile_size

                planned = planned_tile_size(
                    int(self.locations.shape[0]), variant=self.variant, acc=self.acc
                )
            self.tile_size = cfg.tile_size if planned is None else planned
        else:
            self.tile_size = int(self.tile_size)
        self.compression_method = self.compression_method or cfg.compression_method
        self.truncation = self.truncation or cfg.truncation

    # -------------------------------------------------------------- payload
    def to_payload(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        """The bundle as ``(meta, arrays)`` — the serialization both the
        on-disk format (:meth:`save`) and the binary wire transport
        (register-by-upload) share. ``meta`` is everything scalar
        (JSON-able, without file checksums); ``arrays`` holds every
        array under the structured key scheme (``factor_tile_i_j``,
        ``dist_r0_r1_c0_c1``, ...).
        """
        arrays: Dict[str, np.ndarray] = {"locations": self.locations}
        if self.z is not None:
            arrays["z"] = self.z
        factor_kind = self._pack_factor(arrays)
        n_dist = 0
        if self.distance_blocks:
            for (r0, r1, c0, c1), d in self.distance_blocks.items():
                arrays[f"dist_{r0}_{r1}_{c0}_{c1}"] = d
                n_dist += 1
        if self.full_distances is not None:
            arrays["full_distances"] = self.full_distances
        if self.perm is not None:
            arrays["perm"] = np.asarray(self.perm, dtype=np.int64)
        meta = {
            "format_version": FORMAT_VERSION,
            "model": model_to_spec(self.model),
            "substrate": {
                "variant": self.variant,
                "acc": self.acc,
                "tile_size": self.tile_size,
                "compression_method": self.compression_method,
                "truncation": self.truncation,
            },
            "n": int(self.locations.shape[0]),
            "dim": int(self.locations.shape[1]),
            "has_z": self.z is not None,
            "factor_kind": factor_kind,
            "n_distance_blocks": n_dist,
            "has_full_distances": self.full_distances is not None,
            "info": dict(self.info),
        }
        return meta, arrays

    @classmethod
    def from_payload(cls, meta: dict, arrays: Dict[str, np.ndarray]) -> "ModelBundle":
        """Rebuild a bundle from :meth:`to_payload` output (or from a
        decoded wire message / a read ``meta.json`` + ``arrays.npz``
        pair). Raises :class:`BundleError` on version or structure
        problems."""
        if not isinstance(meta, dict):
            raise BundleError(
                f"bundle meta must be an object, got {type(meta).__name__}"
            )
        version = meta.get("format_version")
        if version != FORMAT_VERSION:
            raise BundleError(
                f"bundle format version {version!r} unsupported "
                f"(this build reads version {FORMAT_VERSION})"
            )
        missing = [key for key in ("model", "substrate", "n") if key not in meta]
        if missing:
            raise BundleError(f"bundle meta is missing {missing}")
        try:
            sub = meta["substrate"]
            if not isinstance(sub, dict):
                raise BundleError(
                    f"substrate section must be an object, got {type(sub).__name__}"
                )
            if "locations" not in arrays:
                raise BundleError("bundle payload is missing the locations array")
            bundle = cls(
                model=model_from_spec(meta["model"]),
                locations=arrays["locations"],
                z=arrays.get("z"),
                variant=sub["variant"],
                acc=sub["acc"],
                tile_size=sub["tile_size"],
                compression_method=sub["compression_method"],
                truncation=sub["truncation"],
                info=dict(meta.get("info", {})),
            )
            bundle.factor = cls._unpack_factor(meta, arrays, bundle)
        except KeyError as exc:
            raise BundleError(
                f"bundle payload is malformed: missing required key {exc}"
            ) from exc
        blocks = {
            tuple(int(p) for p in name.split("_")[1:]): arr
            for name, arr in arrays.items()
            if name.startswith("dist_")
        }
        bundle.distance_blocks = blocks or None
        bundle.full_distances = arrays.get("full_distances")
        bundle.perm = arrays.get("perm")
        return bundle

    # ----------------------------------------------------------------- save
    def save(self, path: Union[str, Path]) -> Path:
        """Write the bundle directory (``meta.json`` + ``arrays.npz``).

        ``arrays.npz`` (the long write — factors are O(n²)) lands
        first and ``meta.json`` last, so the metadata's existence is
        the commit marker: a writer killed mid-save leaves a directory
        that readers — and the fit orchestrator's finalize check —
        recognize as incomplete rather than a torn bundle that loads
        half-way.
        """
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        meta, arrays = self.to_payload()
        arrays_tmp = path / (ARRAYS_NAME + ".tmp")
        with arrays_tmp.open("wb") as fh:
            np.savez(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(arrays_tmp, path / ARRAYS_NAME)
        # The checksum is computed over the *renamed* payload so a read-back
        # verifies exactly what load() will see; meta.json still lands last
        # as the commit marker.
        meta["checksums"] = {ARRAYS_NAME: _sha256_file(path / ARRAYS_NAME)}
        meta_tmp = path / (META_NAME + ".tmp")
        with meta_tmp.open("w") as fh:
            json.dump(meta, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(meta_tmp, path / META_NAME)
        _fsync_path(path)
        return path

    def _pack_factor(self, arrays: Dict[str, np.ndarray]) -> Optional[str]:
        if self.factor is None:
            return None
        if isinstance(self.factor, TileMatrix):
            for i, j, tile in self.factor.iter_stored():
                arrays[f"factor_tile_{i}_{j}"] = tile
            return "tile"
        if isinstance(self.factor, TLRMatrix):
            for k in range(self.factor.nt):
                arrays[f"factor_diag_{k}"] = self.factor.diag[k]
            for (i, j), lr in self.factor.low.items():
                arrays[f"factor_u_{i}_{j}"] = lr.u
                arrays[f"factor_v_{i}_{j}"] = lr.v
            return "tlr"
        arrays["factor"] = np.asarray(self.factor)
        return "dense"

    # ----------------------------------------------------------------- load
    @classmethod
    def load(cls, path: Union[str, Path]) -> "ModelBundle":
        """Read a bundle directory written by :meth:`save`."""
        path = Path(path)
        meta_path = path / META_NAME
        arrays_path = path / ARRAYS_NAME
        if not meta_path.is_file() or not arrays_path.is_file():
            raise BundleError(
                f"{path} is not a model bundle (missing {META_NAME} or {ARRAYS_NAME})"
            )
        try:
            with meta_path.open() as fh:
                meta = json.load(fh)
        except json.JSONDecodeError as exc:
            raise BundleError(f"{meta_path} is not valid JSON: {exc}") from exc
        if not isinstance(meta, dict):
            raise BundleError(
                f"{meta_path} must hold a JSON object, got {type(meta).__name__}"
            )
        fault_point("store.load", path=str(arrays_path))
        checksums = meta.get("checksums")
        if isinstance(checksums, dict) and ARRAYS_NAME in checksums:
            actual = _sha256_file(arrays_path)
            if actual != checksums[ARRAYS_NAME]:
                quarantined = _quarantine(path)
                raise BundleCorruptError(
                    f"bundle at {path} failed its integrity check: "
                    f"{ARRAYS_NAME} sha256 {actual[:12]}... does not match "
                    f"recorded {str(checksums[ARRAYS_NAME])[:12]}...; "
                    f"quarantined at {quarantined}"
                )
        try:
            with np.load(arrays_path) as npz:
                arrays = {k: npz[k] for k in npz.files}
        except (zipfile.BadZipFile, OSError, ValueError, EOFError, KeyError) as exc:
            quarantined = _quarantine(path)
            raise BundleCorruptError(
                f"bundle at {path} has an unreadable {ARRAYS_NAME} "
                f"({type(exc).__name__}: {exc}); quarantined at {quarantined}"
            ) from exc
        try:
            return cls.from_payload(meta, arrays)
        except BundleError as exc:
            raise BundleError(f"bundle at {path} is malformed: {exc}") from exc

    @staticmethod
    def _unpack_factor(meta: dict, arrays: Dict[str, np.ndarray], bundle: "ModelBundle"):
        kind = meta.get("factor_kind")
        if kind is None:
            return None
        n, nb = meta["n"], bundle.tile_size
        if kind == "dense":
            return arrays["factor"]
        if kind == "tile":
            grid = TileGrid(n, nb)
            tm = TileMatrix(grid, symmetric_lower=True)
            for name, arr in arrays.items():
                if name.startswith("factor_tile_"):
                    _, _, i, j = name.split("_")
                    tm.set_tile(int(i), int(j), np.ascontiguousarray(arr))
            return tm
        if kind == "tlr":
            grid = TileGrid(n, nb)
            tlr = TLRMatrix(grid, float(bundle.acc))
            for name, arr in arrays.items():
                if name.startswith("factor_diag_"):
                    tlr.diag[int(name.rsplit("_", 1)[1])] = np.ascontiguousarray(arr)
            for name, arr in arrays.items():
                if name.startswith("factor_u_"):
                    _, _, i, j = name.split("_")
                    v = arrays[f"factor_v_{i}_{j}"]
                    tlr.low[(int(i), int(j))] = LowRank(
                        np.ascontiguousarray(arr), np.ascontiguousarray(v)
                    )
            if any(d is None for d in tlr.diag):
                raise BundleError("TLR factor is missing diagonal tiles")
            return tlr
        raise BundleError(f"unknown factor kind {kind!r}")

    # --------------------------------------------------------------- engine
    def build_engine(
        self,
        *,
        runtime: Optional[Runtime] = None,
        cache_distances: Optional[bool] = None,
        parallel_generation: Optional[bool] = None,
        compression_batch: Optional[int] = None,
    ) -> PredictionEngine:
        """A ready-to-serve :class:`PredictionEngine` for this bundle.

        The engine is bound to the bundle's training set, observations
        and substrate; a persisted factor is adopted (first predict
        skips generation + factorization) and persisted distance data
        rehydrates the engine's caches. No fitting, no data pipeline.
        """
        engine = PredictionEngine(
            self.locations,
            self.z,
            self.model,
            variant=self.variant,
            acc=self.acc,
            tile_size=self.tile_size,
            runtime=runtime,
            compression_method=self.compression_method,
            cache_distances=cache_distances,
            parallel_generation=parallel_generation,
            compression_batch=compression_batch,
            full_distances=self.full_distances,
        )
        if self.distance_blocks and engine.distance_cache is not None:
            engine.distance_cache.load_blocks(self.distance_blocks)
        if self.factor is not None:
            engine.adopt_factor(self.factor, self.model)
        return engine

    @property
    def n(self) -> int:
        """Training-set size."""
        return int(self.locations.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ModelBundle(n={self.n}, variant={self.variant!r}, "
            f"model={type(self.model).__name__}, "
            f"factor={'yes' if self.factor is not None else 'no'})"
        )


def save_model(bundle: ModelBundle, path: Union[str, Path]) -> Path:
    """Persist ``bundle`` at ``path`` (module-level alias of :meth:`ModelBundle.save`)."""
    return bundle.save(path)


def load_model(path: Union[str, Path]) -> ModelBundle:
    """Load a bundle directory (module-level alias of :meth:`ModelBundle.load`)."""
    return ModelBundle.load(path)


def bundle_from_fit(
    estimator,
    fit,
    *,
    include_factor: bool = True,
    include_distance_cache: bool = False,
) -> ModelBundle:
    """Build a :class:`ModelBundle` from an :class:`MLEstimator` and its fit.

    With ``include_factor`` (default) the estimator's
    :meth:`~repro.mle.estimator.MLEstimator.predictor` factor at
    ``fit.theta`` is captured — computing it now if the fit did not
    leave one behind — so serving is bit-identical to in-process
    prediction and pays no first-request factorization.
    ``include_distance_cache`` additionally snapshots the fit's distance
    cache (tile/TLR blocks, or the full-block distance matrix).

    The fit's optimizer settings (:attr:`FitResult.options` — resolved
    seed, ``n_starts``, tolerances, bounds, starting point) are
    persisted under ``info["fit"]`` in ``meta.json``, so the served
    model's fit is reproducible from the bundle alone: rebuild an
    estimator from the bundle's data and substrate, replay ``fit`` with
    ``info["fit"]``'s settings, and the same theta comes back.
    """
    ev = estimator.evaluator
    model = estimator.model.with_theta(fit.theta)
    factor = None
    if include_factor:
        factor = estimator.predictor(fit).factor()
    distance_blocks = None
    full_distances = None
    if include_distance_cache:
        if ev.distance_cache is not None:
            distance_blocks = ev.distance_cache.export_blocks()
        full_distances = ev._full_distances
    return ModelBundle(
        model=model,
        locations=estimator.locations,
        z=estimator.z,
        variant=estimator.variant,
        acc=ev.acc,
        tile_size=ev.tile_size,
        compression_method=ev.compression_method,
        truncation=ev.truncation_rule,
        factor=factor,
        distance_blocks=distance_blocks,
        full_distances=full_distances,
        perm=estimator._perm,
        info={
            "loglik": float(fit.loglik),
            "n_evals": int(fit.n_evals),
            "time_total": float(fit.time_total),
            "converged": bool(fit.optimizer.converged),
            "fit": dict(getattr(fit, "options", {}) or {}),
        },
    )
